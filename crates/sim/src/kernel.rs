//! The simulation kernel: component registry + event loop.

use crate::audit;
use crate::component::{Component, ComponentId};
use crate::event::EventQueue;
use crate::time::Time;
use crate::trace::TraceVal;

/// The scheduling context handed to a component while it handles an event.
///
/// `Ctx` is the only way components interact with the rest of the machine:
/// they read the clock with [`Ctx::now`] and schedule events with
/// [`Ctx::send`] / [`Ctx::send_at`].
pub struct Ctx<'a, E> {
    now: Time,
    self_id: ComponentId,
    queue: &'a mut EventQueue<E>,
    stop_requested: &'a mut bool,
}

impl<E> Ctx<'_, E> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the component currently handling an event.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedules `event` for `dst`, `delay` after the current time.
    #[inline]
    pub fn send(&mut self, dst: ComponentId, delay: Time, event: E) {
        self.queue.push(self.now + delay, dst, event);
    }

    /// Schedules `event` for `dst` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — delivering events backwards in time
    /// would break causality.
    #[inline]
    pub fn send_at(&mut self, dst: ComponentId, at: Time, event: E) {
        assert!(at >= self.now, "cannot schedule an event in the past");
        self.queue.push(at, dst, event);
    }

    /// Asks the kernel to stop after the current event is handled.
    pub fn request_stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// A complete simulated machine: a registry of components and the event loop
/// that drives them.
///
/// See the [crate-level documentation](crate) for a full example.
pub struct Simulation<E> {
    components: Vec<Option<Box<dyn Component<E>>>>,
    queue: EventQueue<E>,
    now: Time,
    stop_requested: bool,
    events_processed: u64,
    /// Observer invoked for every delivered event (see
    /// [`set_event_hook`](Simulation::set_event_hook)). `None` in normal
    /// operation, so the delivery loop pays only a branch.
    event_hook: Option<Box<dyn FnMut(Time, ComponentId, &E)>>,
    /// `(time, seq)` of the last delivered event; the invariant auditor
    /// checks lexicographic pop order against it. Only touched when
    /// auditing is on.
    audit_last: Option<(Time, u64)>,
}

/// Pending-event capacity reserved up front by [`Simulation::new`]: large
/// enough that the memory-system models never reallocate the queue's hot
/// tiers mid-run, small enough to be free for unit tests.
const DEFAULT_QUEUE_CAPACITY: usize = 1024;

impl<E: 'static> Simulation<E> {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            components: Vec::new(),
            queue: EventQueue::with_capacity(DEFAULT_QUEUE_CAPACITY),
            now: Time::ZERO,
            stop_requested: false,
            events_processed: 0,
            event_hook: None,
            audit_last: None,
        }
    }

    /// Installs an observer called for every delivered event, before the
    /// destination component handles it.
    ///
    /// The hook is a pure observer — it receives the delivery time, the
    /// destination, and a borrow of the event, and cannot schedule events
    /// or mutate components, so it can never perturb a run. The system
    /// model uses it to feed the kernel trace category
    /// ([`crate::trace`]); harnesses may use it for ad-hoc event counting.
    /// Pass-through cost when no hook is installed is a single branch.
    pub fn set_event_hook(&mut self, hook: Option<Box<dyn FnMut(Time, ComponentId, &E)>>) {
        self.event_hook = hook;
    }

    /// Registers a component and returns its id.
    pub fn add_component(&mut self, component: Box<dyn Component<E>>) -> ComponentId {
        let id = ComponentId::from_raw(self.components.len() as u32);
        self.components.push(Some(component));
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Schedules an event from outside the simulation (e.g. test or harness
    /// code), `delay` after the current time.
    pub fn post(&mut self, dst: ComponentId, delay: Time, event: E) {
        self.queue.push(self.now + delay, dst, event);
    }

    /// Runs `f` with a typed mutable reference to the component `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale or if the component is not a `T`.
    pub fn with_component<T: 'static, F, R>(&mut self, id: ComponentId, f: F) -> R
    where
        F: FnOnce(&mut T) -> R,
    {
        let slot = self
            .components
            .get_mut(id.raw() as usize)
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("no component registered with {id:?}"));
        let any = slot.as_any_mut();
        let typed = any
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("component {id:?} is not the requested type"));
        f(typed)
    }

    /// Delivers the next pending event, if any. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue produced a past event");
        if audit::enabled() {
            // Invariant 6: time never runs backwards, and deliveries come
            // in exact lexicographic (time, seq) order.
            if ev.time < self.now {
                audit::violation(
                    audit::AuditKind::Clock,
                    ev.time,
                    u16::MAX,
                    "past_event",
                    &[
                        ("now_units", TraceVal::U(self.now.units())),
                        ("seq", TraceVal::U(ev.seq)),
                    ],
                );
            }
            if let Some((last_time, last_seq)) = self.audit_last {
                if (ev.time, ev.seq) <= (last_time, last_seq) {
                    audit::violation(
                        audit::AuditKind::Clock,
                        ev.time,
                        u16::MAX,
                        "delivery_order",
                        &[
                            ("seq", TraceVal::U(ev.seq)),
                            ("last_seq", TraceVal::U(last_seq)),
                            ("last_units", TraceVal::U(last_time.units())),
                        ],
                    );
                }
            }
            self.audit_last = Some((ev.time, ev.seq));
        }
        self.now = ev.time;
        self.events_processed += 1;
        if let Some(hook) = &mut self.event_hook {
            hook(self.now, ev.dst, &ev.event);
        }

        // Temporarily take the component out of its slot so it can freely
        // schedule events to any component (including itself) via Ctx.
        let idx = ev.dst.raw() as usize;
        let mut component = self.components[idx]
            .take()
            .unwrap_or_else(|| panic!("event delivered to missing component {:?}", ev.dst));
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: ev.dst,
                queue: &mut self.queue,
                stop_requested: &mut self.stop_requested,
            };
            component.handle(ev.event, &mut ctx);
        }
        self.components[idx] = Some(component);
        true
    }

    /// Consumes a pending stop request, clearing the flag.
    ///
    /// Both run loops check (and reset) the flag through this single
    /// path, so a stop requested by the last event before *any* exit —
    /// including one at exactly a `run_until` deadline — is observed
    /// before another event can be delivered.
    #[inline]
    fn take_stop(&mut self) -> bool {
        std::mem::take(&mut self.stop_requested)
    }

    /// Runs until the event queue drains or a component requests a stop.
    pub fn run(&mut self) {
        loop {
            if self.take_stop() || !self.step() {
                return;
            }
        }
    }

    /// Runs until simulated time reaches `deadline` (events at exactly
    /// `deadline` are delivered), the queue drains, or a stop is requested.
    pub fn run_until(&mut self, deadline: Time) {
        loop {
            if self.take_stop() {
                return;
            }
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => {
                    // Advance the clock to the deadline even if idle, so that
                    // successive run_until calls observe monotonic time.
                    if self.now < deadline {
                        self.now = deadline;
                    }
                    return;
                }
            }
        }
    }

    /// Runs for `span` of simulated time from the current clock.
    pub fn run_for(&mut self, span: Time) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }
}

impl<E: 'static> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_as_any;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Msg {
        Ping,
        Pong,
    }

    struct Pinger {
        peer: ComponentId,
        pongs: u32,
        limit: u32,
    }

    impl Component<Msg> for Pinger {
        fn name(&self) -> &str {
            "pinger"
        }
        fn handle(&mut self, ev: Msg, ctx: &mut Ctx<'_, Msg>) {
            match ev {
                Msg::Pong => {
                    self.pongs += 1;
                    if self.pongs < self.limit {
                        ctx.send(self.peer, Time::from_ns(1), Msg::Ping);
                    }
                }
                Msg::Ping => ctx.send(self.peer, Time::from_ns(1), Msg::Ping),
            }
        }
        impl_as_any!();
    }

    struct Ponger {
        peer: ComponentId,
    }

    impl Component<Msg> for Ponger {
        fn name(&self) -> &str {
            "ponger"
        }
        fn handle(&mut self, ev: Msg, ctx: &mut Ctx<'_, Msg>) {
            if ev == Msg::Ping {
                ctx.send(self.peer, Time::from_ns(1), Msg::Pong);
            }
        }
        impl_as_any!();
    }

    fn build(limit: u32) -> (Simulation<Msg>, ComponentId) {
        let mut sim = Simulation::new();
        let pinger_id = sim.add_component(Box::new(Pinger {
            peer: ComponentId::UNWIRED,
            pongs: 0,
            limit,
        }));
        let ponger_id = sim.add_component(Box::new(Ponger { peer: pinger_id }));
        sim.with_component::<Pinger, _, _>(pinger_id, |p| p.peer = ponger_id);
        sim.post(ponger_id, Time::ZERO, Msg::Ping);
        (sim, pinger_id)
    }

    #[test]
    fn ping_pong_round_trips() {
        let (mut sim, pinger) = build(5);
        sim.run();
        sim.with_component::<Pinger, _, _>(pinger, |p| assert_eq!(p.pongs, 5));
        // 5 pongs: ping->pong pairs plus the initial ping.
        assert_eq!(sim.events_processed(), 10);
    }

    #[test]
    fn run_until_respects_deadline_and_advances_clock() {
        let (mut sim, _) = build(1_000_000);
        sim.run_until(Time::from_ns(10));
        assert_eq!(sim.now(), Time::from_ns(10));
        // Events at 1ns intervals: at most ~10 delivered.
        assert!(sim.events_processed() <= 11);

        // Idle advance: no events pending beyond the deadline.
        let mut idle: Simulation<Msg> = Simulation::new();
        idle.run_until(Time::from_us(3));
        assert_eq!(idle.now(), Time::from_us(3));
    }

    #[test]
    fn run_for_is_relative() {
        let (mut sim, _) = build(1_000_000);
        sim.run_for(Time::from_ns(4));
        sim.run_for(Time::from_ns(4));
        assert_eq!(sim.now(), Time::from_ns(8));
    }

    struct Stopper;
    impl Component<Msg> for Stopper {
        fn name(&self) -> &str {
            "stopper"
        }
        fn handle(&mut self, _ev: Msg, ctx: &mut Ctx<'_, Msg>) {
            ctx.request_stop();
        }
        impl_as_any!();
    }

    #[test]
    fn request_stop_halts_run() {
        let mut sim = Simulation::new();
        let id = sim.add_component(Box::new(Stopper));
        sim.post(id, Time::from_ns(1), Msg::Ping);
        sim.post(id, Time::from_ns(2), Msg::Ping);
        sim.run();
        assert_eq!(sim.events_processed(), 1);
        // The stop flag resets; a subsequent run drains the queue.
        sim.run();
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn stop_at_exact_run_until_deadline_is_not_dropped() {
        let deadline = Time::from_ns(5);
        let mut sim = Simulation::new();
        let id = sim.add_component(Box::new(Stopper));
        // Two events at exactly the deadline: the first requests a stop,
        // so the second must stay queued for the next run.
        sim.post(id, deadline, Msg::Ping);
        sim.post(id, deadline, Msg::Ping);
        sim.run_until(deadline);
        assert_eq!(sim.events_processed(), 1, "stop at the deadline dropped");
        assert_eq!(sim.now(), deadline);
        // The flag must not leak into the next run either.
        sim.run_until(deadline);
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    #[should_panic(expected = "not the requested type")]
    fn with_component_wrong_type_panics() {
        let (mut sim, pinger) = build(1);
        sim.with_component::<Ponger, _, _>(pinger, |_| ());
    }

    #[test]
    fn event_hook_observes_every_delivery() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let (mut sim, _) = build(3);
        let seen: Rc<RefCell<Vec<(Time, Msg)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        sim.set_event_hook(Some(Box::new(move |t, _dst, ev: &Msg| {
            sink.borrow_mut().push((t, *ev));
        })));
        sim.run();
        assert_eq!(seen.borrow().len() as u64, sim.events_processed());
        assert_eq!(seen.borrow()[0], (Time::ZERO, Msg::Ping));
        // Removing the hook stops observation without disturbing the run.
        sim.set_event_hook(None);
        sim.post(ComponentId::from_raw(0), Time::from_ns(1), Msg::Pong);
        sim.run();
        assert_eq!(seen.borrow().len() as u64, sim.events_processed() - 1);
    }
}
