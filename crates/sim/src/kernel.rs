//! The simulation kernel: component registry + event loop.
//!
//! Two kernels share the same component model and `(time, seq)` delivery
//! contract:
//!
//! * [`Simulation`] — the sequential kernel: one event queue, one loop.
//! * [`PartitionedSimulation`] — the conservative parallel-DES kernel:
//!   the component graph is split into *domains*, each with its own
//!   ladder queue, synchronized by barrier epochs whose width is the
//!   minimum cross-domain link latency (the *lookahead*). A cross-domain
//!   send at time `t` arrives no earlier than `t + lookahead`, so every
//!   domain can drain to the epoch horizon before exchanging time-stamped
//!   event batches. See `DESIGN.md` §12 for the architecture and the
//!   determinism argument.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::audit;
use crate::component::{Component, ComponentId};
use crate::event::{EventQueue, ScheduledEvent};
use crate::sync::{Mailbox, Mutex};
use crate::time::Time;
use crate::trace::{self, TraceVal};

/// Bit position of the domain index inside a composite sequence number.
///
/// Every event pushed by the partitioned kernel carries
/// `seq = (domain << SEQ_DOMAIN_SHIFT) | per-domain counter`: local pushes
/// allocate from their domain queue's counter (rebased to the domain's
/// space), and cross-domain sends allocate from the *sender's* counter at
/// send time and carry the seq with the event. Delivery order at any
/// destination is lexicographic `(time, seq)` — a pure function of the
/// schedule, independent of thread count and of when remote batches are
/// ingested. 2^48 events per domain of headroom before spaces could
/// collide.
const SEQ_DOMAIN_SHIFT: u32 = 48;

/// Cross-domain routing state attached to a domain's [`Simulation`].
struct RouteState<E> {
    /// Owning domain per component id (shared, read-only).
    domain_of: Arc<[u32]>,
    /// The domain this queue belongs to.
    home: u32,
    /// Cross-domain sends staged during the current epoch window, each
    /// carrying a seq allocated from this domain's counter.
    outbox: Vec<ScheduledEvent<E>>,
}

/// The scheduling context handed to a component while it handles an event.
///
/// `Ctx` is the only way components interact with the rest of the machine:
/// they read the clock with [`Ctx::now`] and schedule events with
/// [`Ctx::send`] / [`Ctx::send_at`].
pub struct Ctx<'a, E> {
    now: Time,
    self_id: ComponentId,
    queue: &'a mut EventQueue<E>,
    stop_requested: &'a mut bool,
    route: Option<&'a mut RouteState<E>>,
}

impl<E> Ctx<'_, E> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the component currently handling an event.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedules `event` for `dst`, `delay` after the current time.
    #[inline]
    pub fn send(&mut self, dst: ComponentId, delay: Time, event: E) {
        self.push_routed(dst, self.now + delay, event);
    }

    /// Schedules `event` for `dst` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — delivering events backwards in time
    /// would break causality.
    #[inline]
    pub fn send_at(&mut self, dst: ComponentId, at: Time, event: E) {
        assert!(at >= self.now, "cannot schedule an event in the past");
        self.push_routed(dst, at, event);
    }

    /// Local pushes go straight to the queue; under the partitioned
    /// kernel, sends to a foreign domain are staged in the outbox with a
    /// seq carried from this domain's counter (see `SEQ_DOMAIN_SHIFT`).
    #[inline]
    fn push_routed(&mut self, dst: ComponentId, at: Time, event: E) {
        if let Some(route) = self.route.as_deref_mut() {
            if route.domain_of.get(dst.raw() as usize).copied() != Some(route.home) {
                assert!(
                    !dst.is_unwired(),
                    "event scheduled for an unwired component port"
                );
                let seq = self.queue.allocate_seq();
                route.outbox.push(ScheduledEvent {
                    time: at,
                    seq,
                    dst,
                    event,
                });
                return;
            }
        }
        self.queue.push(at, dst, event);
    }

    /// Asks the kernel to stop after the current event is handled.
    ///
    /// Under the sequential kernel the run loop exits before the next
    /// event; under the partitioned kernel the stop takes effect at the
    /// end of the current barrier epoch (at most one lookahead later), so
    /// every domain halts at the same horizon.
    pub fn request_stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// A complete simulated machine: a registry of components and the event loop
/// that drives them.
///
/// See the [crate-level documentation](crate) for a full example.
pub struct Simulation<E> {
    components: Vec<Option<Box<dyn Component<E>>>>,
    queue: EventQueue<E>,
    now: Time,
    stop_requested: bool,
    events_processed: u64,
    /// Observer invoked for every delivered event (see
    /// [`set_event_hook`](Simulation::set_event_hook)). `None` in normal
    /// operation, so the delivery loop pays only a branch. `Send` because
    /// the partitioned kernel moves domain simulations to worker threads.
    event_hook: Option<Box<dyn FnMut(Time, ComponentId, &E) + Send>>,
    /// `(time, seq)` of the last delivered event; the invariant auditor
    /// checks lexicographic pop order against it. Only touched when
    /// auditing is on.
    audit_last: Option<(Time, u64)>,
    /// Cross-domain routing, present only when this simulation is one
    /// domain of a [`PartitionedSimulation`]. `None` costs the sequential
    /// hot path a single branch in [`Ctx::send`].
    route: Option<Box<RouteState<E>>>,
}

/// Pending-event capacity reserved up front by [`Simulation::new`]: large
/// enough that the memory-system models never reallocate the queue's hot
/// tiers mid-run, small enough to be free for unit tests.
const DEFAULT_QUEUE_CAPACITY: usize = 1024;

impl<E: 'static> Simulation<E> {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            components: Vec::new(),
            queue: EventQueue::with_capacity(DEFAULT_QUEUE_CAPACITY),
            now: Time::ZERO,
            stop_requested: false,
            events_processed: 0,
            event_hook: None,
            audit_last: None,
            route: None,
        }
    }

    /// Installs an observer called for every delivered event, before the
    /// destination component handles it.
    ///
    /// The hook is a pure observer — it receives the delivery time, the
    /// destination, and a borrow of the event, and cannot schedule events
    /// or mutate components, so it can never perturb a run. The system
    /// model uses it to feed the kernel trace category
    /// ([`crate::trace`]); harnesses may use it for ad-hoc event counting.
    /// Pass-through cost when no hook is installed is a single branch.
    /// The hook must be `Send` so a domain simulation can move to a
    /// partitioned-kernel worker.
    pub fn set_event_hook(&mut self, hook: Option<Box<dyn FnMut(Time, ComponentId, &E) + Send>>) {
        self.event_hook = hook;
    }

    /// Registers a component and returns its id.
    pub fn add_component(&mut self, component: Box<dyn Component<E>>) -> ComponentId {
        let id = ComponentId::from_raw(self.components.len() as u32);
        self.components.push(Some(component));
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Schedules an event from outside the simulation (e.g. test or harness
    /// code), `delay` after the current time.
    pub fn post(&mut self, dst: ComponentId, delay: Time, event: E) {
        self.queue.push(self.now + delay, dst, event);
    }

    /// Runs `f` with a typed mutable reference to the component `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale or if the component is not a `T`.
    pub fn with_component<T: 'static, F, R>(&mut self, id: ComponentId, f: F) -> R
    where
        F: FnOnce(&mut T) -> R,
    {
        let slot = self
            .components
            .get_mut(id.raw() as usize)
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("no component registered with {id:?}"));
        let any = slot.as_any_mut();
        let typed = any
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("component {id:?} is not the requested type"));
        f(typed)
    }

    /// Delivers the next pending event, if any. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue produced a past event");
        if audit::enabled() {
            // Invariant 6: time never runs backwards, and deliveries come
            // in exact lexicographic (time, seq) order.
            if ev.time < self.now {
                audit::violation(
                    audit::AuditKind::Clock,
                    ev.time,
                    u16::MAX,
                    "past_event",
                    &[
                        ("now_units", TraceVal::U(self.now.units())),
                        ("seq", TraceVal::U(ev.seq)),
                    ],
                );
            }
            if let Some((last_time, last_seq)) = self.audit_last {
                // A partitioned domain legally delivers same-time causal
                // appends out of seq order: a zero-latency forward of a
                // remote arrival allocates a fresh local seq, and the
                // composite prefix (the *sender's* domain index) may sort
                // below the remote one. Domain kernels therefore audit
                // clock monotonicity and duplicated seqs; only the
                // sequential kernel owns the exact lexicographic contract.
                let regressed = if self.route.is_some() {
                    ev.time < last_time
                        || (ev.time == last_time && ev.seq == last_seq)
                } else {
                    (ev.time, ev.seq) <= (last_time, last_seq)
                };
                if regressed {
                    audit::violation(
                        audit::AuditKind::Clock,
                        ev.time,
                        u16::MAX,
                        "delivery_order",
                        &[
                            ("seq", TraceVal::U(ev.seq)),
                            ("last_seq", TraceVal::U(last_seq)),
                            ("last_units", TraceVal::U(last_time.units())),
                        ],
                    );
                }
            }
            self.audit_last = Some((ev.time, ev.seq));
        }
        self.now = ev.time;
        self.events_processed += 1;
        if let Some(hook) = &mut self.event_hook {
            hook(self.now, ev.dst, &ev.event);
        }

        // Temporarily take the component out of its slot so it can freely
        // schedule events to any component (including itself) via Ctx.
        let idx = ev.dst.raw() as usize;
        let mut component = self.components[idx]
            .take()
            .unwrap_or_else(|| panic!("event delivered to missing component {:?}", ev.dst));
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: ev.dst,
                queue: &mut self.queue,
                stop_requested: &mut self.stop_requested,
                route: self.route.as_deref_mut(),
            };
            component.handle(ev.event, &mut ctx);
        }
        self.components[idx] = Some(component);
        true
    }

    /// Delivers every pending event strictly before `end_excl` (the
    /// partitioned kernel's epoch window). Does not advance the clock
    /// past the last delivered event and does not consume a stop request —
    /// the epoch coordinator observes stops at the barrier.
    fn run_window(&mut self, end_excl: Time) {
        while let Some(t) = self.queue.peek_time() {
            if t >= end_excl {
                break;
            }
            self.step();
        }
    }

    /// Consumes a pending stop request, clearing the flag.
    ///
    /// Both run loops check (and reset) the flag through this single
    /// path, so a stop requested by the last event before *any* exit —
    /// including one at exactly a `run_until` deadline — is observed
    /// before another event can be delivered.
    #[inline]
    fn take_stop(&mut self) -> bool {
        std::mem::take(&mut self.stop_requested)
    }

    /// Runs until the event queue drains or a component requests a stop.
    pub fn run(&mut self) {
        loop {
            if self.take_stop() || !self.step() {
                return;
            }
        }
    }

    /// Runs until simulated time reaches `deadline` (events at exactly
    /// `deadline` are delivered), the queue drains, or a stop is requested.
    pub fn run_until(&mut self, deadline: Time) {
        loop {
            if self.take_stop() {
                return;
            }
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => {
                    // Advance the clock to the deadline even if idle, so that
                    // successive run_until calls observe monotonic time.
                    if self.now < deadline {
                        self.now = deadline;
                    }
                    return;
                }
            }
        }
    }

    /// Runs for `span` of simulated time from the current clock.
    pub fn run_for(&mut self, span: Time) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }
}

impl<E: 'static> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// One domain of a [`PartitionedSimulation`]: a full sequential kernel
/// owning a slice of the component graph, plus its private trace buffer.
struct DomainState<E> {
    sim: Simulation<E>,
    trace: trace::DomainBuffer,
}

/// What the epoch coordinator decides to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EpochPlan {
    /// No event remains before the run horizon.
    Done,
    /// The serial domain owns the globally earliest timestamp: run its
    /// events at exactly this time on the coordinator, with every other
    /// domain parked at the barrier (exclusive access to shared state).
    Serial(Time),
    /// Run every worker domain up to (exclusive) this horizon.
    Window(Time),
}

/// Plans one epoch. Both drivers (inline and threaded) call this with the
/// same inputs, so they produce the identical epoch sequence.
///
/// Invariant relied on: `min_pending >= horizon` — every pending event is
/// at or after the committed horizon (cross-domain arrivals land at or
/// after the epoch that produced them; external posts land at or after the
/// clock, which never trails the horizon).
fn plan_epoch(
    horizon: Time,
    min_pending: Option<Time>,
    serial_peek: Option<Time>,
    lookahead: Time,
    end_excl: Time,
) -> EpochPlan {
    let Some(m) = min_pending else {
        return EpochPlan::Done;
    };
    if m >= end_excl {
        return EpochPlan::Done;
    }
    let start = if horizon > m { horizon } else { m };
    if let Some(ts) = serial_peek {
        if ts <= start {
            return EpochPlan::Serial(ts);
        }
    }
    let mut end = start + lookahead;
    if end_excl < end {
        end = end_excl;
    }
    if let Some(ts) = serial_peek {
        if ts < end {
            end = ts;
        }
    }
    EpochPlan::Window(end)
}

/// Per-epoch report a worker leaves for the coordinator.
struct EpochOut<E> {
    outbox: Vec<ScheduledEvent<E>>,
    lines: Vec<(u64, trace::Staged)>,
    next: Option<Time>,
    stop: bool,
}

impl<E> Default for EpochOut<E> {
    fn default() -> Self {
        EpochOut {
            outbox: Vec::new(),
            lines: Vec::new(),
            next: None,
            stop: false,
        }
    }
}

/// Routes one epoch's cross-domain sends: serial-bound events go straight
/// into the serial queue (the coordinator owns it), worker-bound events are
/// staged per destination for [`flush_staged`]. Every arrival must be at or
/// after `min_arrival` — the epoch horizon the receivers drained to — or
/// the partition plan undercut a real link latency.
fn route_outbox<E>(
    outbox: Vec<ScheduledEvent<E>>,
    min_arrival: Time,
    domain_of: &[u32],
    serial_idx: Option<usize>,
    serial_state: &mut Option<DomainState<E>>,
    staged: &mut [Vec<ScheduledEvent<E>>],
    inboxes: &[Mailbox<ScheduledEvent<E>>],
) {
    for ev in outbox {
        assert!(
            ev.time >= min_arrival,
            "cross-domain event for {:?} arrives at {:?}, before the epoch horizon {:?}: \
             the partition plan's lookahead exceeds this link's real latency",
            ev.dst,
            ev.time,
            min_arrival
        );
        let dest = domain_of[ev.dst.raw() as usize] as usize;
        if Some(dest) == serial_idx {
            let state = serial_state
                .as_mut()
                .expect("serial-bound event without a serial domain");
            state.sim.queue.push_with_seq(ev.time, ev.seq, ev.dst, ev.event);
        } else {
            if staged[dest].capacity() == 0 {
                staged[dest] = inboxes[dest].lease();
            }
            staged[dest].push(ev);
        }
    }
}

/// Deposits staged batches into their destination mailboxes and folds the
/// earliest staged arrival into the coordinator's pending-time map.
fn flush_staged<E>(
    staged: &mut [Vec<ScheduledEvent<E>>],
    inboxes: &[Mailbox<ScheduledEvent<E>>],
    next: &mut [Option<Time>],
) {
    for (dest, batch) in staged.iter_mut().enumerate() {
        if batch.is_empty() {
            continue;
        }
        let earliest = batch.iter().map(|ev| ev.time).min().expect("non-empty batch");
        next[dest] = Some(next[dest].map_or(earliest, |n| n.min(earliest)));
        inboxes[dest].put(std::mem::take(batch));
    }
}

/// Merges one epoch's trace lines from every domain into the global ring
/// in sequential order: `(time, domain)` ascending, per-domain emission
/// order preserved (stable sort). Domain order at equal times matches the
/// sequential kernel because composite seqs put the domain in the high
/// bits.
fn sink_epoch_trace(mut lines: Vec<(u64, u32, trace::Staged)>) {
    if lines.is_empty() {
        return;
    }
    lines.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    trace::sink_staged(lines.into_iter().map(|(_, _, staged)| staged));
}

/// Spin-waits for `cond`, backing off to `yield_now` once the barrier has
/// clearly stalled (epochs are microseconds apart, so the hot spin wins).
fn spin_until(cond: impl Fn() -> bool) {
    let mut tries = 0u32;
    while !cond() {
        if tries < (1 << 14) {
            std::hint::spin_loop();
            tries += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

/// `epoch_end` sentinel telling workers to exit their epoch loop.
const EXIT: u64 = u64::MAX;

/// The conservative parallel-DES kernel: one simulation timeline, executed
/// by several sequential kernels in barrier-synchronized epochs.
///
/// [`PartitionedSimulation::new`] consumes a built [`Simulation`] and a
/// *domain map* (one domain index per component). Each domain becomes a
/// private [`Simulation`] — own ladder queue, own clock — and components
/// keep their global [`ComponentId`]s. Cross-domain sends are staged in a
/// per-domain outbox during an epoch and exchanged at the barrier; the
/// epoch width is the *lookahead*: the minimum cross-domain link latency,
/// so an event sent at time `t` can only arrive at `t + lookahead` or
/// later — never inside a window another domain is still executing.
///
/// # Determinism
///
/// Every event carries a composite sequence number
/// `(domain << 48) | per-domain counter` (see `SEQ_DOMAIN_SHIFT`), and
/// every queue delivers in lexicographic `(time, seq)` order. Both are
/// pure functions of the schedule, so the delivered event order — and
/// therefore every figure, trace line, and statistic — is byte-identical
/// at any worker count, including the inline single-thread driver.
///
/// # The serial domain
///
/// One domain may be marked *serial* (the PRM in the PARD machine: it
/// reads statistics owned by other domains when triggers fire). Whenever
/// the serial domain owns the globally earliest timestamp, the coordinator
/// runs those events alone, with every other domain parked at the barrier,
/// so its cross-domain reads observe exactly the pre-timestamp state — the
/// same state the sequential kernel would show it.
///
/// # Divergences from [`Simulation`]
///
/// * [`Ctx::request_stop`] halts at the end of the current epoch (at most
///   one lookahead late), not after the current event.
/// * Event hooks do not survive partitioning; install per-domain hooks
///   with [`PartitionedSimulation::set_event_hooks`].
/// * A tracer must be installed *before* partitioning: each domain
///   snapshots the trace configuration into a private buffer at
///   construction.
pub struct PartitionedSimulation<E> {
    domains: Vec<DomainState<E>>,
    domain_of: Arc<[u32]>,
    serial: Option<u32>,
    lookahead: Time,
    /// All events strictly before this horizon have been delivered; the
    /// committed front of the whole timeline.
    horizon: Time,
    now: Time,
    events_base: u64,
    audit_shared: bool,
    /// This machine's conservation-ledger scope: several partitioned
    /// machines may audit concurrently (the fleet layer), so each keys its
    /// ledger entries under a unique scope installed on whichever thread
    /// runs its domain windows.
    audit_scope: u64,
    /// When set, overrides the worker-count heuristics outright (tests
    /// pin the threaded driver regardless of machine parallelism).
    forced_workers: Option<usize>,
}

impl<E: Send + 'static> PartitionedSimulation<E> {
    /// Partitions `sim` into domains per `domain_of` (one domain index per
    /// component, in registration order).
    ///
    /// `serial` optionally names the barrier-serialized domain, and
    /// `lookahead` is the minimum cross-domain link latency — the caller
    /// (see `pard-icn`'s domain planner) is responsible for it being a
    /// true lower bound; the kernel asserts it at every exchange.
    ///
    /// # Panics
    ///
    /// Panics if `domain_of` does not cover every component, if `serial`
    /// names a domain outside the map, or if `lookahead` is zero (a zero
    /// lookahead admits no parallelism — keep those components in one
    /// domain).
    pub fn new(sim: Simulation<E>, domain_of: Vec<u32>, serial: Option<u32>, lookahead: Time) -> Self {
        let Simulation {
            components,
            mut queue,
            now,
            stop_requested: _,
            events_processed,
            event_hook: _,
            audit_last: _,
            route: _,
        } = sim;
        assert!(
            lookahead > Time::ZERO,
            "partitioning requires a positive lookahead"
        );
        assert_eq!(
            components.len(),
            domain_of.len(),
            "domain map must cover every registered component"
        );
        let ndom = domain_of
            .iter()
            .copied()
            .max()
            .map(|m| m as usize + 1)
            .expect("cannot partition an empty simulation");
        assert!(
            (ndom as u32) < (1 << (64 - SEQ_DOMAIN_SHIFT)).min(u32::MAX as u64) as u32,
            "too many domains for the composite seq space"
        );
        if let Some(s) = serial {
            assert!((s as usize) < ndom, "serial domain {s} not in the domain map");
        }

        let domain_of: Arc<[u32]> = domain_of.into();
        let count = components.len();
        let mut domains: Vec<DomainState<E>> = (0..ndom)
            .map(|d| {
                let mut dom = Simulation::new();
                dom.components = (0..count).map(|_| None).collect();
                dom.queue.set_seq_base((d as u64) << SEQ_DOMAIN_SHIFT);
                dom.now = now;
                dom.route = Some(Box::new(RouteState {
                    domain_of: domain_of.clone(),
                    home: d as u32,
                    outbox: Vec::new(),
                }));
                DomainState {
                    sim: dom,
                    trace: trace::DomainBuffer::snapshot(),
                }
            })
            .collect();

        for (i, slot) in components.into_iter().enumerate() {
            domains[domain_of[i] as usize].sim.components[i] = slot;
        }
        // Drain the original queue in pop order — global (time, seq) order
        // — so each domain's counter hands out seqs in delivery order.
        // This runs once at construction, so the rebased seqs are the same
        // at any worker count.
        while let Some(ev) = queue.pop() {
            let d = domain_of[ev.dst.raw() as usize] as usize;
            domains[d].sim.queue.push(ev.time, ev.dst, ev.event);
        }

        // One simulation now spans several worker threads: conservation
        // flows cross domains, so the audit ledger must be shared. The
        // machine's warm-up entries (if it ran sequentially first) migrate
        // in rekeyed to its fresh scope, which every domain window
        // installs while it executes.
        let audit_scope = audit::alloc_ledger_scope();
        let audit_shared = audit::enabled();
        if audit_shared {
            audit::share_ledger_scoped(audit_scope);
        }

        PartitionedSimulation {
            domains,
            domain_of,
            serial,
            lookahead,
            horizon: now,
            now,
            events_base: events_processed,
            audit_shared,
            audit_scope,
            forced_workers: None,
        }
    }

    /// Installs one event hook per domain: `make(d)` is called once for
    /// each domain index and may return `None` to leave that domain
    /// unobserved. The per-domain hooks replace the single sequential hook
    /// (which cannot be shared across worker threads).
    pub fn set_event_hooks<F>(&mut self, mut make: F)
    where
        F: FnMut(u32) -> Option<Box<dyn FnMut(Time, ComponentId, &E) + Send>>,
    {
        for (d, dom) in self.domains.iter_mut().enumerate() {
            dom.sim.set_event_hook(make(d as u32));
        }
    }

    /// Committed simulated time (the deadline of the last `run_until`, or
    /// the time of the last delivered event after a stop).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events delivered, including those before partitioning.
    pub fn events_processed(&self) -> u64 {
        self.events_base + self.domains.iter().map(|d| d.sim.events_processed()).sum::<u64>()
    }

    /// Number of registered components (across all domains).
    pub fn component_count(&self) -> usize {
        self.domain_of.len()
    }

    /// Number of domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// The barrier epoch width.
    pub fn lookahead(&self) -> Time {
        self.lookahead
    }

    /// Schedules an event from outside the simulation, `delay` after the
    /// committed time, directly into the owning domain's queue.
    pub fn post(&mut self, dst: ComponentId, delay: Time, event: E) {
        let d = self.domain_of[dst.raw() as usize] as usize;
        let at = self.now + delay;
        self.domains[d].sim.queue.push(at, dst, event);
    }

    /// Runs `f` with a typed mutable reference to component `id` (see
    /// [`Simulation::with_component`]).
    pub fn with_component<T: 'static, F, R>(&mut self, id: ComponentId, f: F) -> R
    where
        F: FnOnce(&mut T) -> R,
    {
        let d = self.domain_of[id.raw() as usize] as usize;
        self.domains[d].sim.with_component(id, f)
    }

    /// Runs until simulated time reaches `deadline` (events at exactly
    /// `deadline` are delivered), every queue drains, or a component
    /// requests a stop (which takes effect at the current epoch horizon).
    pub fn run_until(&mut self, deadline: Time) {
        let end_excl = Time::from_units(deadline.units().saturating_add(1));
        let stopped = self.advance(end_excl);
        if stopped {
            let reached = self
                .domains
                .iter()
                .map(|d| d.sim.now())
                .max()
                .unwrap_or(self.now);
            if reached > self.now {
                self.now = reached;
            }
            // Re-anchor the horizon at the committed clock so later posts
            // (which land at `now + delay`) keep the pending-events ≥
            // horizon invariant the epoch planner relies on.
            self.horizon = self.now;
        } else {
            if deadline > self.now {
                self.now = deadline;
            }
            self.horizon = deadline;
        }
    }

    /// Runs for `span` of simulated time from the committed clock.
    pub fn run_for(&mut self, span: Time) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// How many worker threads the next advance will use. Collapses to the
    /// inline driver when only one worker domain exists or when the fault
    /// layer is installed (its run state is thread-local and scoped worker
    /// threads are born fresh each call, which would diverge from the
    /// sequential schedule).
    /// Pins the worker count, bypassing the `PARD_WORKERS` /
    /// `PARD_THREADS` / machine-parallelism heuristics (`None` restores
    /// them). The schedule is identical at every setting; this only
    /// chooses which driver executes it, so determinism tests use it to
    /// force the threaded driver on single-core machines.
    pub fn set_workers(&mut self, workers: Option<usize>) {
        self.forced_workers = workers;
    }

    fn worker_count(&self) -> usize {
        let worker_domains = self.domains.len() - usize::from(self.serial.is_some());
        if worker_domains <= 1 || crate::fault::installed() {
            return 1;
        }
        if let Some(n) = self.forced_workers {
            return n.clamp(1, worker_domains);
        }
        // `PARD_WORKERS` forces the worker count outright (determinism
        // tests exercise the threaded driver on any machine). Otherwise
        // `PARD_THREADS` caps the pool, additionally clamped to the
        // machine's parallelism: the epoch barrier is a spin barrier, and
        // oversubscribed spinning workers serialize through the scheduler
        // — strictly slower than the inline driver, with the identical
        // schedule either way.
        if let Ok(v) = std::env::var("PARD_WORKERS") {
            match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => return n.min(worker_domains),
                _ => {
                    // Hard error, not a silent fallback: a run asked to
                    // pin its worker count must not quietly run with a
                    // heuristic one (the `PARD_FAULT_PLAN` contract).
                    eprintln!("PARD_WORKERS: bad worker count {v:?} (want an integer >= 1)");
                    std::process::exit(2);
                }
            }
        }
        let hw = std::thread::available_parallelism().map_or(1, usize::from);
        crate::par::thread_count().min(worker_domains).min(hw).max(1)
    }

    fn advance(&mut self, end_excl: Time) -> bool {
        let workers = self.worker_count();
        // Install this machine's ledger scope for the calling thread (the
        // inline driver's windows and the threaded driver's serial domain
        // both run here); worker threads install it themselves.
        let prev_scope = audit::set_ledger_scope(self.audit_scope);
        let stopped = if workers <= 1 {
            self.advance_inline(end_excl)
        } else {
            self.advance_threaded(end_excl, workers)
        };
        audit::set_ledger_scope(prev_scope);
        stopped
    }

    /// Runs domain `d`'s window with its trace buffer entered on this
    /// thread.
    fn run_domain_window(&mut self, d: usize, end_excl: Time) {
        let dom = &mut self.domains[d];
        trace::enter_domain(std::mem::take(&mut dom.trace));
        dom.sim.run_window(end_excl);
        dom.trace = trace::exit_domain();
    }

    /// Drains every domain's outbox into destination queues (arrivals must
    /// be at or after `min_arrival`) and merges this epoch's trace lines.
    fn exchange(&mut self, min_arrival: Time) {
        let mut lines: Vec<(u64, u32, trace::Staged)> = Vec::new();
        for d in 0..self.domains.len() {
            for (units, staged) in self.domains[d].trace.drain_staged() {
                lines.push((units, d as u32, staged));
            }
            let outbox = {
                let route = self.domains[d]
                    .sim
                    .route
                    .as_mut()
                    .expect("domain simulations always route");
                std::mem::take(&mut route.outbox)
            };
            for ev in outbox {
                assert!(
                    ev.time >= min_arrival,
                    "cross-domain event for {:?} arrives at {:?}, before the epoch horizon {:?}: \
                     the partition plan's lookahead exceeds this link's real latency",
                    ev.dst,
                    ev.time,
                    min_arrival
                );
                let dest = self.domain_of[ev.dst.raw() as usize] as usize;
                self.domains[dest]
                    .sim
                    .queue
                    .push_with_seq(ev.time, ev.seq, ev.dst, ev.event);
            }
        }
        sink_epoch_trace(lines);
    }

    /// The single-thread driver: the exact epoch sequence of the threaded
    /// driver, executed in domain order on the calling thread. Returns
    /// `true` if a stop was requested.
    fn advance_inline(&mut self, end_excl: Time) -> bool {
        loop {
            let min_pending = self
                .domains
                .iter()
                .filter_map(|d| d.sim.queue.peek_time())
                .min();
            let serial_peek = self
                .serial
                .and_then(|s| self.domains[s as usize].sim.queue.peek_time());
            match plan_epoch(self.horizon, min_pending, serial_peek, self.lookahead, end_excl) {
                EpochPlan::Done => return false,
                EpochPlan::Serial(ts) => {
                    let s = self.serial.expect("serial plan without a serial domain") as usize;
                    self.run_domain_window(s, Time::from_units(ts.units().saturating_add(1)));
                    let stopped = self.domains[s].sim.take_stop();
                    self.exchange(ts);
                    self.horizon = ts;
                    if stopped {
                        return true;
                    }
                }
                EpochPlan::Window(e) => {
                    let mut stopped = false;
                    for d in 0..self.domains.len() {
                        if Some(d as u32) == self.serial {
                            continue;
                        }
                        self.run_domain_window(d, e);
                        stopped |= self.domains[d].sim.take_stop();
                    }
                    self.exchange(e);
                    self.horizon = e;
                    if stopped {
                        return true;
                    }
                }
            }
        }
    }

    /// The threaded driver: worker domains are pinned round-robin onto
    /// `workers` scoped threads for the duration of this call; the
    /// coordinator (calling thread) plans epochs, releases the workers
    /// through a spin-generation barrier, exchanges outboxes between
    /// epochs, and runs the serial domain itself. Returns `true` if a stop
    /// was requested.
    ///
    /// Worker panics (including strict-audit aborts) are caught at the
    /// epoch boundary, reported through the barrier so every thread exits
    /// cleanly, and resumed on the coordinator after the domains have been
    /// reassembled.
    fn advance_threaded(&mut self, end_excl: Time, workers: usize) -> bool {
        use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

        let ndom = self.domains.len();
        let serial_idx = self.serial.map(|s| s as usize);
        let audit_scope = self.audit_scope;
        let domain_of = self.domain_of.clone();
        let lookahead = self.lookahead;
        let mut horizon = self.horizon;
        let mut next: Vec<Option<Time>> = self
            .domains
            .iter()
            .map(|d| d.sim.queue.peek_time())
            .collect();

        let slots: Vec<Mutex<Option<DomainState<E>>>> = self
            .domains
            .drain(..)
            .map(|d| Mutex::new(Some(d)))
            .collect();
        let mut serial_state: Option<DomainState<E>> =
            serial_idx.map(|i| slots[i].lock().take().expect("serial domain present"));
        let worker_domains: Vec<usize> = (0..ndom).filter(|&d| Some(d) != serial_idx).collect();

        let inboxes: Vec<Mailbox<ScheduledEvent<E>>> = (0..ndom).map(|_| Mailbox::new()).collect();
        let results: Vec<Mutex<EpochOut<E>>> =
            (0..ndom).map(|_| Mutex::new(EpochOut::default())).collect();
        let epoch_end = AtomicU64::new(0);
        let generation = AtomicU64::new(0);
        let done: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let mut stopped = false;

        std::thread::scope(|scope| {
            for w in 0..workers {
                let mine: Vec<usize> = worker_domains
                    .iter()
                    .enumerate()
                    .filter(|(rank, _)| rank % workers == w)
                    .map(|(_, &d)| d)
                    .collect();
                let slots = &slots;
                let inboxes = &inboxes;
                let results = &results;
                let epoch_end = &epoch_end;
                let generation = &generation;
                let done = &done[w];
                let panic_slot = &panic_slot;
                scope.spawn(move || {
                    audit::set_ledger_scope(audit_scope);
                    let mut states: Vec<(usize, DomainState<E>)> = mine
                        .iter()
                        .map(|&d| (d, slots[d].lock().take().expect("domain unclaimed")))
                        .collect();
                    let mut scratch: Vec<ScheduledEvent<E>> = Vec::new();
                    let mut my_gen = 0u64;
                    loop {
                        spin_until(|| generation.load(Ordering::Acquire) > my_gen);
                        my_gen += 1;
                        // The Acquire load of `generation` synchronizes
                        // with the coordinator's Release store, which
                        // happens after `epoch_end` was written.
                        let e_units = epoch_end.load(Ordering::Relaxed);
                        if e_units == EXIT {
                            done.store(my_gen, Ordering::Release);
                            break;
                        }
                        let e = Time::from_units(e_units);
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            for (d, state) in states.iter_mut() {
                                // Ingest remote arrivals before the window:
                                // an arrival at the previous horizon is
                                // inside this window.
                                inboxes[*d].take_into(&mut scratch);
                                for ev in scratch.drain(..) {
                                    state.sim.queue.push_with_seq(ev.time, ev.seq, ev.dst, ev.event);
                                }
                                trace::enter_domain(std::mem::take(&mut state.trace));
                                state.sim.run_window(e);
                                state.trace = trace::exit_domain();
                                let mut out = results[*d].lock();
                                out.outbox = std::mem::take(
                                    &mut state
                                        .sim
                                        .route
                                        .as_mut()
                                        .expect("domain simulations always route")
                                        .outbox,
                                );
                                out.lines = state.trace.drain_staged();
                                out.next = state.sim.queue.peek_time();
                                out.stop = state.sim.take_stop();
                            }
                        }));
                        let failed = outcome.is_err();
                        if let Err(payload) = outcome {
                            *panic_slot.lock() = Some(payload);
                        }
                        done.store(my_gen, Ordering::Release);
                        if failed {
                            break;
                        }
                    }
                    for (d, state) in states {
                        *slots[d].lock() = Some(state);
                    }
                });
            }

            let mut gen = 0u64;
            let mut staged: Vec<Vec<ScheduledEvent<E>>> = (0..ndom).map(|_| Vec::new()).collect();
            loop {
                let serial_peek = serial_state
                    .as_ref()
                    .and_then(|s| s.sim.queue.peek_time());
                let min_pending = worker_domains
                    .iter()
                    .filter_map(|&d| next[d])
                    .chain(serial_peek)
                    .min();
                match plan_epoch(horizon, min_pending, serial_peek, lookahead, end_excl) {
                    EpochPlan::Done => break,
                    EpochPlan::Serial(ts) => {
                        // Workers are parked at the barrier: the serial
                        // domain has the machine to itself.
                        let state = serial_state
                            .as_mut()
                            .expect("serial plan without a serial domain");
                        trace::enter_domain(std::mem::take(&mut state.trace));
                        state.sim.run_window(Time::from_units(ts.units().saturating_add(1)));
                        state.trace = trace::exit_domain();
                        let sd = serial_idx.expect("serial plan without a serial index") as u32;
                        let lines: Vec<(u64, u32, trace::Staged)> = state
                            .trace
                            .drain_staged()
                            .into_iter()
                            .map(|(units, staged)| (units, sd, staged))
                            .collect();
                        let outbox = std::mem::take(
                            &mut state
                                .sim
                                .route
                                .as_mut()
                                .expect("domain simulations always route")
                                .outbox,
                        );
                        let stop = state.sim.take_stop();
                        route_outbox(
                            outbox,
                            ts,
                            &domain_of,
                            serial_idx,
                            &mut serial_state,
                            &mut staged,
                            &inboxes,
                        );
                        flush_staged(&mut staged, &inboxes, &mut next);
                        sink_epoch_trace(lines);
                        horizon = ts;
                        if stop {
                            stopped = true;
                            break;
                        }
                    }
                    EpochPlan::Window(e) => {
                        epoch_end.store(e.units(), Ordering::Relaxed);
                        gen += 1;
                        generation.store(gen, Ordering::Release);
                        spin_until(|| done.iter().all(|d| d.load(Ordering::Acquire) >= gen));
                        if panic_slot.lock().is_some() {
                            break;
                        }
                        let mut lines: Vec<(u64, u32, trace::Staged)> = Vec::new();
                        for &d in &worker_domains {
                            let mut out = results[d].lock();
                            if out.stop {
                                stopped = true;
                                out.stop = false;
                            }
                            next[d] = out.next;
                            for (units, staged) in out.lines.drain(..) {
                                lines.push((units, d as u32, staged));
                            }
                            let outbox = std::mem::take(&mut out.outbox);
                            drop(out);
                            route_outbox(
                                outbox,
                                e,
                                &domain_of,
                                serial_idx,
                                &mut serial_state,
                                &mut staged,
                                &inboxes,
                            );
                        }
                        flush_staged(&mut staged, &inboxes, &mut next);
                        sink_epoch_trace(lines);
                        horizon = e;
                        if stopped {
                            break;
                        }
                    }
                }
            }

            epoch_end.store(EXIT, Ordering::Relaxed);
            gen += 1;
            generation.store(gen, Ordering::Release);
        });

        if let Some(state) = serial_state.take() {
            *slots[serial_idx.expect("serial state implies serial index")].lock() = Some(state);
        }
        self.domains = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every domain returned after the scope"))
            .collect();
        self.horizon = horizon;
        if let Some(payload) = panic_slot.into_inner() {
            resume_unwind(payload);
        }
        stopped
    }
}

impl<E> Drop for PartitionedSimulation<E> {
    fn drop(&mut self) {
        if self.audit_shared {
            audit::release_shared_ledger();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_as_any;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Msg {
        Ping,
        Pong,
    }

    struct Pinger {
        peer: ComponentId,
        pongs: u32,
        limit: u32,
    }

    impl Component<Msg> for Pinger {
        fn name(&self) -> &str {
            "pinger"
        }
        fn handle(&mut self, ev: Msg, ctx: &mut Ctx<'_, Msg>) {
            match ev {
                Msg::Pong => {
                    self.pongs += 1;
                    if self.pongs < self.limit {
                        ctx.send(self.peer, Time::from_ns(1), Msg::Ping);
                    }
                }
                Msg::Ping => ctx.send(self.peer, Time::from_ns(1), Msg::Ping),
            }
        }
        impl_as_any!();
    }

    struct Ponger {
        peer: ComponentId,
    }

    impl Component<Msg> for Ponger {
        fn name(&self) -> &str {
            "ponger"
        }
        fn handle(&mut self, ev: Msg, ctx: &mut Ctx<'_, Msg>) {
            if ev == Msg::Ping {
                ctx.send(self.peer, Time::from_ns(1), Msg::Pong);
            }
        }
        impl_as_any!();
    }

    fn build(limit: u32) -> (Simulation<Msg>, ComponentId) {
        let mut sim = Simulation::new();
        let pinger_id = sim.add_component(Box::new(Pinger {
            peer: ComponentId::UNWIRED,
            pongs: 0,
            limit,
        }));
        let ponger_id = sim.add_component(Box::new(Ponger { peer: pinger_id }));
        sim.with_component::<Pinger, _, _>(pinger_id, |p| p.peer = ponger_id);
        sim.post(ponger_id, Time::ZERO, Msg::Ping);
        (sim, pinger_id)
    }

    #[test]
    fn ping_pong_round_trips() {
        let (mut sim, pinger) = build(5);
        sim.run();
        sim.with_component::<Pinger, _, _>(pinger, |p| assert_eq!(p.pongs, 5));
        // 5 pongs: ping->pong pairs plus the initial ping.
        assert_eq!(sim.events_processed(), 10);
    }

    #[test]
    fn run_until_respects_deadline_and_advances_clock() {
        let (mut sim, _) = build(1_000_000);
        sim.run_until(Time::from_ns(10));
        assert_eq!(sim.now(), Time::from_ns(10));
        // Events at 1ns intervals: at most ~10 delivered.
        assert!(sim.events_processed() <= 11);

        // Idle advance: no events pending beyond the deadline.
        let mut idle: Simulation<Msg> = Simulation::new();
        idle.run_until(Time::from_us(3));
        assert_eq!(idle.now(), Time::from_us(3));
    }

    #[test]
    fn run_for_is_relative() {
        let (mut sim, _) = build(1_000_000);
        sim.run_for(Time::from_ns(4));
        sim.run_for(Time::from_ns(4));
        assert_eq!(sim.now(), Time::from_ns(8));
    }

    struct Stopper;
    impl Component<Msg> for Stopper {
        fn name(&self) -> &str {
            "stopper"
        }
        fn handle(&mut self, _ev: Msg, ctx: &mut Ctx<'_, Msg>) {
            ctx.request_stop();
        }
        impl_as_any!();
    }

    #[test]
    fn request_stop_halts_run() {
        let mut sim = Simulation::new();
        let id = sim.add_component(Box::new(Stopper));
        sim.post(id, Time::from_ns(1), Msg::Ping);
        sim.post(id, Time::from_ns(2), Msg::Ping);
        sim.run();
        assert_eq!(sim.events_processed(), 1);
        // The stop flag resets; a subsequent run drains the queue.
        sim.run();
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn stop_at_exact_run_until_deadline_is_not_dropped() {
        let deadline = Time::from_ns(5);
        let mut sim = Simulation::new();
        let id = sim.add_component(Box::new(Stopper));
        // Two events at exactly the deadline: the first requests a stop,
        // so the second must stay queued for the next run.
        sim.post(id, deadline, Msg::Ping);
        sim.post(id, deadline, Msg::Ping);
        sim.run_until(deadline);
        assert_eq!(sim.events_processed(), 1, "stop at the deadline dropped");
        assert_eq!(sim.now(), deadline);
        // The flag must not leak into the next run either.
        sim.run_until(deadline);
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    #[should_panic(expected = "not the requested type")]
    fn with_component_wrong_type_panics() {
        let (mut sim, pinger) = build(1);
        sim.with_component::<Ponger, _, _>(pinger, |_| ());
    }

    #[test]
    fn event_hook_observes_every_delivery() {
        let (mut sim, _) = build(3);
        let seen: Arc<Mutex<Vec<(Time, Msg)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        sim.set_event_hook(Some(Box::new(move |t, _dst, ev: &Msg| {
            sink.lock().push((t, *ev));
        })));
        sim.run();
        assert_eq!(seen.lock().len() as u64, sim.events_processed());
        assert_eq!(seen.lock()[0], (Time::ZERO, Msg::Ping));
        // Removing the hook stops observation without disturbing the run.
        sim.set_event_hook(None);
        sim.post(ComponentId::from_raw(0), Time::from_ns(1), Msg::Pong);
        sim.run();
        assert_eq!(seen.lock().len() as u64, sim.events_processed() - 1);
    }

    /// The partitioned kernel must reproduce the sequential kernel's state
    /// trajectory exactly: same component end-state, same event count,
    /// same clock — at whatever worker count the test environment allows
    /// (the driver picks inline vs threaded from the pool size).
    #[test]
    fn partitioned_matches_sequential_ping_pong() {
        let (mut seq, pinger) = build(64);
        seq.run_until(Time::from_ns(200));
        let seq_events = seq.events_processed();
        let seq_pongs = seq.with_component::<Pinger, _, _>(pinger, |p| p.pongs);

        let (sim, pinger) = build(64);
        // Pinger in domain 0, ponger in domain 1; every link is 1 ns.
        let mut part = PartitionedSimulation::new(sim, vec![0, 1], None, Time::from_ns(1));
        part.run_until(Time::from_ns(200));
        assert_eq!(part.now(), Time::from_ns(200));
        assert_eq!(part.events_processed(), seq_events);
        assert_eq!(
            part.with_component::<Pinger, _, _>(pinger, |p| p.pongs),
            seq_pongs
        );
        assert_eq!(part.component_count(), 2);
        assert_eq!(part.domain_count(), 2);
    }

    /// Same equivalence through the threaded driver, pinned to two
    /// workers so it runs even on single-core machines (where the
    /// heuristics would otherwise fall back to the inline driver).
    #[test]
    fn threaded_driver_matches_sequential_ping_pong() {
        let (mut seq, pinger) = build(64);
        seq.run_until(Time::from_ns(200));
        let seq_events = seq.events_processed();
        let seq_pongs = seq.with_component::<Pinger, _, _>(pinger, |p| p.pongs);

        let (sim, pinger) = build(64);
        let mut part = PartitionedSimulation::new(sim, vec![0, 1], None, Time::from_ns(1));
        part.set_workers(Some(2));
        part.run_until(Time::from_ns(200));
        assert_eq!(part.now(), Time::from_ns(200));
        assert_eq!(part.events_processed(), seq_events);
        assert_eq!(
            part.with_component::<Pinger, _, _>(pinger, |p| p.pongs),
            seq_pongs
        );
    }

    /// Per-domain event hooks observe exactly the deliveries of their own
    /// domain, and the union covers every delivery once.
    #[test]
    fn partitioned_hooks_cover_every_delivery() {
        let (sim, _) = build(16);
        let mut part = PartitionedSimulation::new(sim, vec![0, 1], None, Time::from_ns(1));
        let counts: Arc<Mutex<[u64; 2]>> = Arc::new(Mutex::new([0; 2]));
        part.set_event_hooks(|d| {
            let counts = Arc::clone(&counts);
            Some(Box::new(move |_t, _dst, _ev: &Msg| {
                counts.lock()[d as usize] += 1;
            }))
        });
        part.run_until(Time::from_ns(100));
        let seen = *counts.lock();
        assert_eq!(seen[0] + seen[1], part.events_processed());
        assert!(seen[0] > 0 && seen[1] > 0);
    }

    /// A serial domain runs alone whenever it owns the earliest timestamp,
    /// and the result is still identical to the sequential kernel.
    #[test]
    fn partitioned_serial_domain_matches_sequential() {
        let (mut seq, pinger) = build(32);
        seq.run_until(Time::from_ns(150));
        let seq_events = seq.events_processed();
        let seq_pongs = seq.with_component::<Pinger, _, _>(pinger, |p| p.pongs);

        let (sim, pinger) = build(32);
        let mut part = PartitionedSimulation::new(sim, vec![0, 1], Some(0), Time::from_ns(1));
        part.run_until(Time::from_ns(150));
        assert_eq!(part.events_processed(), seq_events);
        assert_eq!(
            part.with_component::<Pinger, _, _>(pinger, |p| p.pongs),
            seq_pongs
        );
    }

    /// A stop requested mid-epoch halts the whole machine at the epoch
    /// horizon: later events stay queued and run on the next call.
    #[test]
    fn partitioned_stop_halts_at_epoch_horizon() {
        let mut sim = Simulation::new();
        let stopper = sim.add_component(Box::new(Stopper));
        let ponger = sim.add_component(Box::new(Ponger { peer: stopper }));
        let _ = ponger;
        sim.post(stopper, Time::from_ns(1), Msg::Ping);
        sim.post(stopper, Time::from_ns(50), Msg::Ping);
        let mut part = PartitionedSimulation::new(sim, vec![0, 1], None, Time::from_ns(1));
        part.run_until(Time::from_ns(100));
        assert_eq!(part.events_processed(), 1, "stop must halt the run");
        assert!(part.now() < Time::from_ns(100));
        part.run_until(Time::from_ns(100));
        assert_eq!(part.events_processed(), 2, "stop must not leak into the next run");
        // The second event stopped the run again, at its own horizon.
        assert_eq!(part.now(), Time::from_ns(50));
        part.run_until(Time::from_ns(100));
        assert_eq!(part.now(), Time::from_ns(100));
    }

    /// Posts after a run land in the owning domain's queue and honour the
    /// committed clock.
    #[test]
    fn partitioned_post_routes_to_owning_domain() {
        let (sim, pinger) = build(4);
        let mut part = PartitionedSimulation::new(sim, vec![0, 1], None, Time::from_ns(1));
        part.run_until(Time::from_ns(30));
        let before = part.events_processed();
        part.post(pinger, Time::from_ns(2), Msg::Pong);
        part.run_until(Time::from_ns(40));
        assert_eq!(part.events_processed(), before + 1);
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn partitioned_zero_lookahead_panics() {
        let (sim, _) = build(1);
        let _ = PartitionedSimulation::new(sim, vec![0, 1], None, Time::ZERO);
    }

    #[test]
    fn epoch_planner_orders_serial_before_windows() {
        let la = Time::from_ns(2);
        let end = Time::from_ns(100);
        // Idle: nothing pending.
        assert_eq!(plan_epoch(Time::ZERO, None, None, la, end), EpochPlan::Done);
        // Pending beyond the horizon: done.
        assert_eq!(
            plan_epoch(Time::ZERO, Some(end), None, la, end),
            EpochPlan::Done
        );
        // Serial owns the earliest timestamp: barrier.
        assert_eq!(
            plan_epoch(
                Time::ZERO,
                Some(Time::from_ns(5)),
                Some(Time::from_ns(5)),
                la,
                end
            ),
            EpochPlan::Serial(Time::from_ns(5))
        );
        // Plain window: one lookahead past the earliest pending event.
        assert_eq!(
            plan_epoch(Time::ZERO, Some(Time::from_ns(5)), None, la, end),
            EpochPlan::Window(Time::from_ns(7))
        );
        // A pending serial event clips the window.
        assert_eq!(
            plan_epoch(
                Time::ZERO,
                Some(Time::from_ns(5)),
                Some(Time::from_ns(6)),
                la,
                end
            ),
            EpochPlan::Window(Time::from_ns(6))
        );
        // The run deadline clips the window.
        assert_eq!(
            plan_epoch(Time::from_ns(99), Some(Time::from_ns(99)), None, la, end),
            EpochPlan::Window(end)
        );
    }
}
