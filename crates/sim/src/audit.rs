//! Online invariant auditing for the simulated machine.
//!
//! The PARD reproduction's guarantees are conservation and isolation
//! invariants: every tagged packet is processed exactly once, DS-id tags
//! survive every hop, LLC way-masks and DRAM/IDE bandwidth quotas bound
//! what a domain can consume, triggers fire iff their predicate holds, and
//! the kernel delivers events in exact `(time, seq)` order. This module is
//! the checker for those invariants. Components report ledger transitions
//! (packet injected / hopped / retired / accountably dropped) and local
//! check failures; the auditor accumulates violations into a structured
//! first-failure report rendered as JSON Lines, with the same sink
//! discipline as [`crate::trace`].
//!
//! Auditing is **zero-cost when disabled**: the only work on a hot path is
//! a single relaxed atomic load through [`enabled`], and instrumented
//! components are expected to guard any bookkeeping behind it. Like the
//! tracer, the auditor is a pure observer — it never schedules events and
//! never touches any RNG, so an audited run produces byte-identical figure
//! output to an unaudited run.
//!
//! # Enabling the auditor
//!
//! The environment-variable interface (read by [`init_from_env`], which the
//! system model calls at construction):
//!
//! * `PARD_AUDIT=report` — record violations and keep running.
//! * `PARD_AUDIT=strict` — panic on the first violation (CI gates).
//! * `PARD_AUDIT_FILE=<path>` — also stream violation JSONL to `<path>`.
//!
//! # The conservation ledger
//!
//! Packet ids are allocated per source component, so the ledger keys every
//! in-flight packet by `(domain, source component, id)`. A *domain* names
//! one conservation flow (e.g. `"xbar"` for core → crossbar → LLC traffic,
//! `"dma"` for device → bridge → DRAM bursts). Hops and retirements of
//! packets the ledger does not know are ignored — harnesses that drive
//! components directly (without the full system model) inject traffic the
//! auditor never saw. In-flight packets remaining at a run deadline are
//! not violations either: simulations stop mid-flight by design. The
//! violations this ledger *does* flag are duplicate injections, DS-id
//! mutations observed at any hop, and unmatched interrupt retirements.
//!
//! The ledger is thread-local by default (one live simulation per thread,
//! the worker-pool contract of `par_map`); callers owning a simulation
//! must call [`begin_run`] before it starts so a reused worker thread
//! cannot leak a previous run's in-flight entries into the next. The
//! partitioned kernel ([`crate::PartitionedSimulation`]) instead flips the
//! ledger into a process-global **shared** mode via [`set_shared_ledger`]:
//! one simulation's conservation flows then span several worker threads
//! (a packet injected by one domain retires in another), so every ledger
//! operation routes through one mutex-guarded map.
//!
//! Several partitioned machines may audit concurrently (the fleet layer
//! runs one `PardServer` per machine and advances them via `par_map`):
//! each machine holds a distinct **ledger scope** ([`alloc_ledger_scope`])
//! that its domain windows install thread-locally ([`set_ledger_scope`])
//! while they execute, and every ledger key carries the scope — machine
//! A's packet `(xbar, src 3, id 17)` never collides with machine B's,
//! even though both machines allocate packet ids from zero.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

use crate::time::Time;
use crate::trace::{format_ns, TraceVal};

/// The invariant families a violation can belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum AuditKind {
    /// Packet conservation: inject / retire exactly once, no unexpected
    /// events swallowed, interrupts matched.
    Conservation = 0,
    /// DS-id preservation end-to-end across crossbar → bridge → IDE/NIC.
    DsPreservation = 1,
    /// LLC way-mask exclusivity and capacity accounting.
    Waymask = 2,
    /// DRAM/IDE windowed-bandwidth quota ceilings.
    Quota = 3,
    /// Trigger soundness: a fired predicate re-evaluates true.
    Trigger = 4,
    /// Kernel time monotonicity and event-queue `(time, seq)` contract.
    Clock = 5,
}

/// Number of invariant families (size of the per-kind counter table).
const KINDS: usize = 6;

impl AuditKind {
    /// Every kind, in counter order.
    pub const ALL: [AuditKind; KINDS] = [
        AuditKind::Conservation,
        AuditKind::DsPreservation,
        AuditKind::Waymask,
        AuditKind::Quota,
        AuditKind::Trigger,
        AuditKind::Clock,
    ];

    /// The lower-case name used in violation lines.
    pub const fn name(self) -> &'static str {
        match self {
            AuditKind::Conservation => "conservation",
            AuditKind::DsPreservation => "ds_preservation",
            AuditKind::Waymask => "waymask",
            AuditKind::Quota => "quota",
            AuditKind::Trigger => "trigger",
            AuditKind::Clock => "clock",
        }
    }

    /// Parses a kind name as rendered in violation lines.
    pub fn parse(s: &str) -> Option<AuditKind> {
        AuditKind::ALL.iter().copied().find(|k| k.name() == s)
    }
}

/// How the auditor reacts to a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditMode {
    /// Record the violation (JSONL + in-memory) and keep running.
    Report,
    /// Panic on the first violation, after recording it.
    Strict,
}

impl AuditMode {
    /// Parses the `PARD_AUDIT` value.
    pub fn parse(s: &str) -> Option<AuditMode> {
        match s {
            "report" => Some(AuditMode::Report),
            "strict" => Some(AuditMode::Strict),
            _ => None,
        }
    }
}

/// Configuration for [`install`].
pub struct AuditConfig {
    /// Violation reaction mode.
    pub mode: AuditMode,
    /// JSONL sink path; `None` keeps violations only in memory.
    pub path: Option<std::path::PathBuf>,
    /// Maximum violation lines retained in memory (counters keep counting
    /// past the cap).
    pub max_records: usize,
}

impl AuditConfig {
    /// A record-and-continue config with no file sink.
    pub fn report() -> Self {
        AuditConfig {
            mode: AuditMode::Report,
            path: None,
            max_records: 1024,
        }
    }

    /// A panic-on-first-violation config with no file sink.
    pub fn strict() -> Self {
        AuditConfig {
            mode: AuditMode::Strict,
            ..AuditConfig::report()
        }
    }
}

struct AuditState {
    sink: Option<BufWriter<File>>,
    records: Vec<String>,
    max_records: usize,
    counts: [u64; KINDS],
    total: u64,
}

/// 0 = off, 1 = report, 2 = strict. The one and only hot-path cost.
static MODE: AtomicU8 = AtomicU8::new(0);
static STATE: Mutex<Option<AuditState>> = Mutex::new(None);
/// Kernel-loop deliveries observed by the audit hook (relaxed counter so
/// the hook never takes a lock).
static OBSERVED: AtomicU64 = AtomicU64::new(0);
/// Catch-all protocol-violation arms hit; counted even when auditing is
/// off so release builds no longer swallow misrouted packets silently.
static UNEXPECTED: AtomicU64 = AtomicU64::new(0);

/// Per-run (per-simulation, per-thread) conservation state.
#[derive(Default)]
struct RunState {
    /// In-flight packets:
    /// `(ledger scope, domain, source component, packet id) → DS-id`.
    ledger: HashMap<(u64, &'static str, u32, u64), u16>,
    /// Outstanding interrupt counts per `(scope, vector, DS-id)`;
    /// interrupts carry no packet id, so they are conserved as a multiset.
    irq: HashMap<(u64, u8, u16), i64>,
}

thread_local! {
    static RUN: RefCell<RunState> = RefCell::new(RunState::default());
    /// The calling thread's active ledger scope (see [`set_ledger_scope`]).
    static SCOPE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Source of fresh ledger-scope ids (0 is the anonymous default scope).
static NEXT_SCOPE: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh, process-unique ledger scope id.
///
/// A *scope* names one simulated machine's conservation flows inside the
/// shared ledger. Packet ids are per-source monotonic **within one
/// simulation**, so when several partitioned machines audit concurrently
/// (the fleet layer's `par_map` across machines) their keys would collide
/// without a scope dimension — machine A's packet `(xbar, src 3, id 17)`
/// is a different packet from machine B's. Each
/// [`PartitionedSimulation`](crate::PartitionedSimulation) takes a scope
/// at construction and installs it on whichever thread executes its
/// domain windows.
pub fn alloc_ledger_scope() -> u64 {
    NEXT_SCOPE.fetch_add(1, Ordering::Relaxed)
}

/// Sets the calling thread's ledger scope, returning the previous one so
/// callers can restore it. Scope 0 is the default for plain sequential
/// simulations (one live simulation per thread).
pub fn set_ledger_scope(scope: u64) -> u64 {
    SCOPE.with(|s| s.replace(scope))
}

/// The calling thread's active ledger scope.
pub fn ledger_scope() -> u64 {
    SCOPE.with(std::cell::Cell::get)
}

/// When set, ledger operations route to [`SHARED`] instead of the
/// thread-local [`RUN`] — the partitioned kernel's mode, where one
/// simulation's conservation flows span several worker threads.
static SHARED_MODE: AtomicBool = AtomicBool::new(false);
static SHARED: Mutex<Option<RunState>> = Mutex::new(None);
/// Live scoped sharers ([`share_ledger_scoped`] / [`release_shared_ledger`]
/// pairs): shared mode stays on until the last partitioned machine drops.
static SHARED_REFS: AtomicU64 = AtomicU64::new(0);

impl RunState {
    /// Folds `other` into `self` (used when migrating between the
    /// thread-local and shared ledgers). Packet keys are disjoint between
    /// the two by construction; interrupt multisets add.
    fn absorb(&mut self, other: RunState) {
        self.ledger.extend(other.ledger);
        for (key, count) in other.irq {
            *self.irq.entry(key).or_insert(0) += count;
        }
    }
}

/// Runs `f` against the active conservation ledger: the shared one in
/// shared mode, the calling thread's otherwise.
fn with_run<R>(f: impl FnOnce(&mut RunState) -> R) -> R {
    if SHARED_MODE.load(Ordering::Acquire) {
        let mut guard = SHARED.lock().unwrap_or_else(|e| e.into_inner());
        f(guard.get_or_insert_with(RunState::default))
    } else {
        RUN.with(|r| f(&mut r.borrow_mut()))
    }
}

/// Switches the conservation ledger between thread-local and shared mode.
///
/// The partitioned kernel enables shared mode when it takes over an
/// audited simulation (domains run on worker threads, so a packet can be
/// injected on one thread and retired on another) and disables it again
/// when dropped. Entries in flight at the switch migrate with it, in both
/// directions, so a sequential warm-up before partitioning stays conserved.
pub fn set_shared_ledger(on: bool) {
    if on {
        let local = RUN.with(|r| std::mem::take(&mut *r.borrow_mut()));
        let mut guard = SHARED.lock().unwrap_or_else(|e| e.into_inner());
        guard.get_or_insert_with(RunState::default).absorb(local);
        drop(guard);
        SHARED_MODE.store(true, Ordering::Release);
    } else {
        SHARED_MODE.store(false, Ordering::Release);
        let taken = SHARED
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(shared) = taken {
            RUN.with(|r| r.borrow_mut().absorb(shared));
        }
    }
}

/// [`set_shared_ledger`]`(true)` that additionally rewrites the calling
/// thread's migrating entries into `scope`.
///
/// A partitioned machine may have warmed up sequentially on this thread
/// (scope 0) before partitioning; its in-flight packets must retire under
/// the scope its domain windows will run with, so the migration rekeys
/// them. Only this thread's local entries are rekeyed — other machines'
/// flows already in the shared ledger keep their own scopes.
pub fn share_ledger_scoped(scope: u64) {
    SHARED_REFS.fetch_add(1, Ordering::AcqRel);
    let local = RUN.with(|r| std::mem::take(&mut *r.borrow_mut()));
    let mut rekeyed = RunState::default();
    for ((_, domain, src, id), ds) in local.ledger {
        rekeyed.ledger.insert((scope, domain, src, id), ds);
    }
    for ((_, vector, ds), count) in local.irq {
        *rekeyed.irq.entry((scope, vector, ds)).or_insert(0) += count;
    }
    let mut guard = SHARED.lock().unwrap_or_else(|e| e.into_inner());
    guard.get_or_insert_with(RunState::default).absorb(rekeyed);
    drop(guard);
    SHARED_MODE.store(true, Ordering::Release);
}

/// Releases one [`share_ledger_scoped`] hold. Shared mode (and the shared
/// map's leftovers) fold back into the calling thread's ledger only when
/// the last holder releases — several partitioned machines may be live at
/// once, and one machine dropping must not strand its siblings' in-flight
/// entries in thread-local mode.
pub fn release_shared_ledger() {
    let prev = SHARED_REFS.fetch_sub(1, Ordering::AcqRel);
    if prev <= 1 {
        SHARED_REFS.store(0, Ordering::Release);
        set_shared_ledger(false);
    }
}

/// True when auditing is on. This is the hot-path guard: a single relaxed
/// atomic load, so instrumented components pay nothing measurable when
/// auditing is off.
#[inline]
pub fn enabled() -> bool {
    MODE.load(Ordering::Relaxed) != 0
}

/// True when the auditor panics on the first violation.
#[inline]
pub fn strict() -> bool {
    MODE.load(Ordering::Relaxed) == 2
}

/// Installs the global auditor from `config`. Replaces any previous
/// auditor (flushing it first). Fails only if the sink file cannot be
/// created.
pub fn install(config: AuditConfig) -> std::io::Result<()> {
    let sink = match &config.path {
        Some(p) => Some(BufWriter::new(File::create(p)?)),
        None => None,
    };
    let state = AuditState {
        sink,
        records: Vec::new(),
        max_records: config.max_records.max(1),
        counts: [0; KINDS],
        total: 0,
    };
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(old) = guard.as_mut() {
        if let Some(sink) = old.sink.as_mut() {
            let _ = sink.flush();
        }
    }
    *guard = Some(state);
    // Publish the mode only after the state is in place so a racing report
    // never observes enabled-but-uninstalled.
    let mode = match config.mode {
        AuditMode::Report => 1,
        AuditMode::Strict => 2,
    };
    MODE.store(mode, Ordering::Release);
    Ok(())
}

/// Reads `PARD_AUDIT` / `PARD_AUDIT_FILE` and installs the auditor if
/// `PARD_AUDIT` is set to a recognised mode.
///
/// Idempotent: only the first call in a process does anything, so every
/// `PardServer` construction may call it unconditionally.
pub fn init_from_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let Ok(mode) = std::env::var("PARD_AUDIT") else {
            return;
        };
        if mode.is_empty() {
            return;
        }
        let Some(mode) = AuditMode::parse(&mode) else {
            eprintln!("PARD_AUDIT: unknown mode {mode:?} (want report|strict); auditing off");
            return;
        };
        let path = std::env::var("PARD_AUDIT_FILE")
            .ok()
            .filter(|p| !p.is_empty())
            .map(std::path::PathBuf::from);
        let config = AuditConfig {
            mode,
            path: path.clone(),
            ..AuditConfig::report()
        };
        if let Err(e) = install(config) {
            eprintln!("PARD_AUDIT_FILE: cannot open {path:?}: {e}");
        }
    });
}

/// Flushes the sink and tears the auditor down, returning the process to
/// the zero-cost disabled state. Clears the calling thread's run state.
pub fn disable() {
    MODE.store(0, Ordering::Release);
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(state) = guard.as_mut() {
        if let Some(sink) = state.sink.as_mut() {
            let _ = sink.flush();
        }
    }
    *guard = None;
    RUN.with(|r| *r.borrow_mut() = RunState::default());
    SHARED_MODE.store(false, Ordering::Release);
    SHARED_REFS.store(0, Ordering::Release);
    *SHARED.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Flushes the JSONL sink (if any) without disabling auditing.
pub fn flush() {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(state) = guard.as_mut() {
        if let Some(sink) = state.sink.as_mut() {
            let _ = sink.flush();
        }
    }
}

/// Resets the calling thread's conservation ledger.
///
/// Must be called before a new simulation starts on this thread (the
/// system model does this at construction): packet ids restart at zero per
/// run, so a reused worker thread would otherwise see a previous run's
/// in-flight entries as duplicate injections.
pub fn begin_run() {
    if !enabled() {
        return;
    }
    RUN.with(|r| *r.borrow_mut() = RunState::default());
    if SHARED_MODE.load(Ordering::Acquire) {
        *SHARED.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Reports one invariant violation.
///
/// Renders the JSONL line, appends it to the in-memory record list and the
/// sink (flushed immediately — violations are rare and must survive a
/// strict abort), bumps the per-kind counters, and panics in strict mode.
pub fn violation(kind: AuditKind, time: Time, ds: u16, check: &str, fields: &[(&str, TraceVal)]) {
    if !enabled() {
        return;
    }
    let mut line = String::with_capacity(96);
    use std::fmt::Write as _;
    let _ = write!(
        line,
        "{{\"time\":{},\"ds\":{},\"kind\":\"{}\",\"check\":\"{}\"",
        format_ns(time),
        ds,
        kind.name(),
        check
    );
    for (key, val) in fields {
        let _ = write!(line, ",\"{key}\":");
        match val {
            TraceVal::U(u) => {
                let _ = write!(line, "{u}");
            }
            TraceVal::F(f) if f.is_finite() => {
                let _ = write!(line, "{f}");
            }
            TraceVal::F(_) => line.push_str("null"),
            TraceVal::S(s) => {
                let _ = write!(line, "\"{s}\"");
            }
            TraceVal::B(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line.push('}');

    {
        let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(state) = guard.as_mut() {
            state.total += 1;
            state.counts[kind as usize] += 1;
            if let Some(sink) = state.sink.as_mut() {
                let _ = writeln!(sink, "{line}");
                let _ = sink.flush();
            }
            if state.records.len() < state.max_records {
                state.records.push(line.clone());
            }
        }
    }
    if strict() {
        panic!("PARD_AUDIT=strict: invariant violation: {line}");
    }
}

/// Records a packet entering a conservation domain.
///
/// A duplicate `(domain, src, id)` key is a conservation violation (packet
/// ids are per-source monotonic within a run).
pub fn packet_inject(domain: &'static str, src: u32, id: u64, ds: u16, time: Time) {
    if !enabled() {
        return;
    }
    let scope = ledger_scope();
    let duplicate = with_run(|r| r.ledger.insert((scope, domain, src, id), ds).is_some());
    if duplicate {
        violation(
            AuditKind::Conservation,
            time,
            ds,
            "duplicate_inject",
            &[
                ("domain", TraceVal::S(domain)),
                ("src", TraceVal::U(src as u64)),
                ("id", TraceVal::U(id)),
            ],
        );
    }
}

/// Checks a packet passing an intermediate hop: its DS-id must match the
/// tag it was injected with. Unknown packets are ignored (see the module
/// docs on partially instrumented harnesses).
pub fn packet_hop(domain: &'static str, src: u32, id: u64, ds: u16, time: Time, stage: &'static str) {
    if !enabled() {
        return;
    }
    let scope = ledger_scope();
    let mismatch = with_run(|r| {
        r.ledger
            .get(&(scope, domain, src, id))
            .copied()
            .filter(|&tagged| tagged != ds)
    });
    if let Some(tagged) = mismatch {
        violation(
            AuditKind::DsPreservation,
            time,
            ds,
            "ds_changed",
            &[
                ("domain", TraceVal::S(domain)),
                ("stage", TraceVal::S(stage)),
                ("src", TraceVal::U(src as u64)),
                ("id", TraceVal::U(id)),
                ("tagged", TraceVal::U(tagged as u64)),
            ],
        );
    }
}

/// Retires a packet at its terminal consumer, checking DS-id preservation
/// one last time. Unknown packets are ignored; a second retirement of the
/// same key therefore goes unflagged here, but the terminal components'
/// unexpected-event arms catch re-delivery.
pub fn packet_retire(
    domain: &'static str,
    src: u32,
    id: u64,
    ds: u16,
    time: Time,
    stage: &'static str,
) {
    if !enabled() {
        return;
    }
    let scope = ledger_scope();
    let mismatch = with_run(|r| {
        r.ledger
            .remove(&(scope, domain, src, id))
            .filter(|&tagged| tagged != ds)
    });
    if let Some(tagged) = mismatch {
        violation(
            AuditKind::DsPreservation,
            time,
            ds,
            "ds_changed",
            &[
                ("domain", TraceVal::S(domain)),
                ("stage", TraceVal::S(stage)),
                ("src", TraceVal::U(src as u64)),
                ("id", TraceVal::U(id)),
                ("tagged", TraceVal::U(tagged as u64)),
            ],
        );
    }
}

/// Removes a packet from the ledger for an *accounted* drop (a policy
/// decision the component counts in its own statistics, e.g. the bridge
/// refusing a disabled DS-id). Not a violation.
pub fn packet_drop(domain: &'static str, src: u32, id: u64) {
    if !enabled() {
        return;
    }
    let scope = ledger_scope();
    with_run(|r| {
        r.ledger.remove(&(scope, domain, src, id));
    });
}

/// Records an interrupt raised toward the APIC. Interrupts carry no packet
/// id, so conservation is tracked as a multiset per `(vector, DS-id)`.
pub fn irq_inject(vector: u8, ds: u16) {
    if !enabled() {
        return;
    }
    let scope = ledger_scope();
    with_run(|r| {
        *r.irq.entry((scope, vector, ds)).or_insert(0) += 1;
    });
}

/// Settles one interrupt at the APIC (`stage` says whether it was routed
/// or accountably dropped). Settling an interrupt that was never raised is
/// a conservation violation.
pub fn irq_settle(vector: u8, ds: u16, time: Time, stage: &'static str) {
    if !enabled() {
        return;
    }
    let scope = ledger_scope();
    let unmatched = with_run(|r| {
        let count = r.irq.entry((scope, vector, ds)).or_insert(0);
        *count -= 1;
        if *count < 0 {
            *count = 0;
            true
        } else {
            false
        }
    });
    if unmatched {
        violation(
            AuditKind::Conservation,
            time,
            ds,
            "interrupt_unmatched",
            &[
                ("vector", TraceVal::U(vector as u64)),
                ("stage", TraceVal::S(stage)),
            ],
        );
    }
}

/// Reports an event arriving at a component that has no protocol arm for
/// it — the misrouted-packet case that release builds used to swallow
/// behind `debug_assert!(false)`. Always counted (see
/// [`unexpected_events`]); reported as a conservation violation when the
/// auditor is on, and kept as a debug-build panic when it is off so
/// uninstrumented test runs still fail loudly.
pub fn unexpected_event(component: &'static str, kind: &'static str, time: Time, ds: u16) {
    UNEXPECTED.fetch_add(1, Ordering::Relaxed);
    if enabled() {
        violation(
            AuditKind::Conservation,
            time,
            ds,
            "unexpected_event",
            &[
                ("component", TraceVal::S(component)),
                ("event", TraceVal::S(kind)),
            ],
        );
    } else {
        debug_assert!(false, "{component} received unexpected event {kind} at {time:?}");
    }
}

/// Counts one kernel-loop delivery (called from the system model's event
/// hook when auditing is on; a relaxed add, never a lock).
#[inline]
pub fn observe_delivery() {
    OBSERVED.fetch_add(1, Ordering::Relaxed);
}

/// Kernel-loop deliveries observed by the audit hook since process start.
pub fn deliveries_observed() -> u64 {
    OBSERVED.load(Ordering::Relaxed)
}

/// Unexpected-event arms hit since process start (counted even with
/// auditing off).
pub fn unexpected_events() -> u64 {
    UNEXPECTED.load(Ordering::Relaxed)
}

/// Packets (and outstanding interrupts) currently in flight on the active
/// ledger (this thread's, or the shared one in shared mode). After a full
/// drain this is zero; at a mid-flight run deadline it may not be, by
/// design.
pub fn in_flight() -> usize {
    with_run(|run| {
        let irqs: i64 = run.irq.values().copied().filter(|&c| c > 0).sum();
        run.ledger.len() + irqs as usize
    })
}

/// Total violations recorded since [`install`].
pub fn violations_total() -> u64 {
    let guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|s| s.total).unwrap_or(0)
}

/// Violations of one kind recorded since [`install`].
pub fn violations_by_kind(kind: AuditKind) -> u64 {
    let guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|s| s.counts[kind as usize]).unwrap_or(0)
}

/// The recorded violation lines (capped at the configured maximum).
pub fn records() -> Vec<String> {
    let guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|s| s.records.clone()).unwrap_or_default()
}

/// The first violation recorded, if any — the head of the first-failure
/// report.
pub fn first_violation() -> Option<String> {
    let guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().and_then(|s| s.records.first().cloned())
}

/// Appends a summary line to the sink (the system model calls this when it
/// shuts down): total violations, per-kind counts, and the number of
/// kernel deliveries the audit hook observed.
pub fn emit_summary(now: Time) {
    if !enabled() {
        return;
    }
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let Some(state) = guard.as_mut() else {
        return;
    };
    let Some(sink) = state.sink.as_mut() else {
        return;
    };
    let mut line = String::with_capacity(96);
    use std::fmt::Write as _;
    let _ = write!(
        line,
        "{{\"time\":{},\"ds\":{},\"kind\":\"summary\",\"check\":\"summary\",\"total\":{},\"deliveries\":{}",
        format_ns(now),
        u16::MAX,
        state.total,
        OBSERVED.load(Ordering::Relaxed),
    );
    for kind in AuditKind::ALL {
        let _ = write!(line, ",\"{}\":{}", kind.name(), state.counts[kind as usize]);
    }
    line.push('}');
    let _ = writeln!(sink, "{line}");
    let _ = sink.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The auditor is process-global, so every test that installs it runs
    // inside this single test function to avoid cross-test interference.
    #[test]
    fn install_report_ledger_strict_disable_lifecycle() {
        assert!(!enabled(), "auditing must start disabled");
        violation(AuditKind::Quota, Time::from_ns(1), 0, "noop", &[]);
        assert_eq!(violations_total(), 0);
        packet_inject("xbar", 1, 0, 3, Time::ZERO);
        assert_eq!(in_flight(), 0, "ledger must ignore ops while disabled");

        install(AuditConfig::report()).unwrap();
        assert!(enabled());
        assert!(!strict());
        begin_run();

        // A direct violation is recorded with its fields rendered.
        violation(
            AuditKind::Waymask,
            Time::from_units(9), // 2.25 ns
            3,
            "fill_outside_mask",
            &[("way", TraceVal::U(7)), ("hot", TraceVal::B(true))],
        );
        assert_eq!(violations_total(), 1);
        assert_eq!(violations_by_kind(AuditKind::Waymask), 1);
        assert_eq!(
            first_violation().unwrap(),
            "{\"time\":2.25,\"ds\":3,\"kind\":\"waymask\",\"check\":\"fill_outside_mask\",\"way\":7,\"hot\":true}"
        );

        // Conservation ledger: inject / hop / retire round trip is clean.
        packet_inject("xbar", 1, 0, 3, Time::ZERO);
        assert_eq!(in_flight(), 1);
        packet_hop("xbar", 1, 0, 3, Time::from_ns(1), "bridge");
        packet_retire("xbar", 1, 0, 3, Time::from_ns(2), "llc");
        assert_eq!(in_flight(), 0);
        assert_eq!(violations_by_kind(AuditKind::DsPreservation), 0);

        // Duplicate injection is a conservation violation.
        packet_inject("xbar", 1, 7, 3, Time::ZERO);
        packet_inject("xbar", 1, 7, 3, Time::ZERO);
        assert_eq!(violations_by_kind(AuditKind::Conservation), 1);

        // A DS-id mutation observed at a hop or at retirement is flagged.
        packet_hop("xbar", 1, 7, 4, Time::from_ns(1), "bridge");
        packet_retire("xbar", 1, 7, 5, Time::from_ns(2), "llc");
        assert_eq!(violations_by_kind(AuditKind::DsPreservation), 2);

        // Unknown packets are ignored (partially instrumented harnesses).
        packet_retire("dma", 9, 100, 0, Time::ZERO, "memctrl");
        packet_hop("dma", 9, 100, 0, Time::ZERO, "bridge");
        assert_eq!(violations_by_kind(AuditKind::DsPreservation), 2);

        // Accounted drops retire silently.
        packet_inject("dma", 2, 0, 1, Time::ZERO);
        packet_drop("dma", 2, 0);
        assert_eq!(in_flight(), 0);
        assert_eq!(violations_total(), 4);

        // Interrupt multiset: inject/settle balances; an unmatched settle
        // is a conservation violation.
        irq_inject(14, 1);
        assert_eq!(in_flight(), 1);
        irq_settle(14, 1, Time::from_ns(3), "routed");
        assert_eq!(in_flight(), 0);
        irq_settle(11, 0, Time::from_ns(4), "dropped");
        assert_eq!(violations_by_kind(AuditKind::Conservation), 2);

        // Unexpected events are conservation violations while enabled.
        unexpected_event("nic", "mem_req", Time::from_ns(5), 2);
        assert_eq!(violations_by_kind(AuditKind::Conservation), 3);
        assert!(unexpected_events() >= 1);

        // begin_run clears a reused thread's in-flight state.
        packet_inject("xbar", 1, 9, 3, Time::ZERO);
        assert_eq!(in_flight(), 1);
        begin_run();
        assert_eq!(in_flight(), 0);
        packet_inject("xbar", 1, 9, 3, Time::ZERO);
        let before = violations_total();
        assert_eq!(
            before,
            violations_total(),
            "re-injecting after begin_run must not flag a duplicate"
        );

        // Shared-ledger mode: in-flight entries migrate on enable, any
        // thread settles against the same ledger, and leftovers migrate
        // back on disable.
        let local_before = in_flight();
        packet_inject("xbar", 1, 20, 3, Time::ZERO);
        set_shared_ledger(true);
        assert_eq!(in_flight(), local_before + 1, "local entries migrate in");
        std::thread::spawn(|| packet_retire("xbar", 1, 20, 3, Time::from_ns(1), "llc"))
            .join()
            .unwrap();
        assert_eq!(in_flight(), local_before, "another thread retires shared entries");
        set_shared_ledger(false);
        assert_eq!(in_flight(), local_before, "leftovers migrate back out");

        // Ledger scopes: two machines injecting the same (domain, src, id)
        // key do not collide, and a scoped warm-up entry migrates into the
        // shared ledger rekeyed to its machine's scope.
        begin_run();
        let before = violations_total();
        let scope_a = alloc_ledger_scope();
        let scope_b = alloc_ledger_scope();
        assert_ne!(scope_a, scope_b);
        set_ledger_scope(scope_a);
        packet_inject("xbar", 1, 40, 3, Time::ZERO);
        set_ledger_scope(scope_b);
        packet_inject("xbar", 1, 40, 5, Time::ZERO);
        assert_eq!(
            violations_total(),
            before,
            "identical keys in different scopes are distinct packets"
        );
        packet_retire("xbar", 1, 40, 5, Time::from_ns(1), "llc");
        set_ledger_scope(scope_a);
        packet_retire("xbar", 1, 40, 3, Time::from_ns(1), "llc");
        assert_eq!(violations_total(), before, "per-scope DS tags preserved");
        assert_eq!(in_flight(), 0);
        // Warm-up migration: a scope-0 entry rekeys to the machine's scope.
        set_ledger_scope(0);
        packet_inject("dma", 4, 50, 2, Time::ZERO);
        share_ledger_scoped(scope_a);
        set_ledger_scope(scope_a);
        packet_retire("dma", 4, 50, 7, Time::from_ns(2), "memctrl");
        assert_eq!(
            violations_total(),
            before + 1,
            "rekeyed warm-up entry still checks DS preservation"
        );
        set_ledger_scope(0);
        set_shared_ledger(false);
        begin_run();

        // Strict mode panics on the first violation, after recording it.
        install(AuditConfig::strict()).unwrap();
        assert!(strict());
        let panicked = std::panic::catch_unwind(|| {
            violation(AuditKind::Clock, Time::ZERO, 0, "past_event", &[]);
        });
        assert!(panicked.is_err(), "strict mode must panic");
        assert_eq!(violations_total(), 1);

        disable();
        assert!(!enabled());
        assert_eq!(violations_total(), 0);
        assert!(first_violation().is_none());
    }

    #[test]
    fn kind_names_round_trip_and_mode_parse() {
        for kind in AuditKind::ALL {
            assert_eq!(AuditKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(AuditKind::parse("nope"), None);
        assert_eq!(AuditMode::parse("report"), Some(AuditMode::Report));
        assert_eq!(AuditMode::parse("strict"), Some(AuditMode::Strict));
        assert_eq!(AuditMode::parse(""), None);
        assert_eq!(AuditMode::parse("STRICT"), None);
    }
}
