//! Simulated hardware components.

use std::any::Any;
use std::fmt;

use crate::kernel::Ctx;

/// Identifies a [`Component`] registered with a
/// [`Simulation`](crate::Simulation).
///
/// Component ids are dense indices handed out at registration time; they are
/// the addresses of the intra-computer network at the kernel level.
///
/// # Example
///
/// ```
/// use pard_sim::ComponentId;
/// let id = ComponentId::from_raw(3);
/// assert_eq!(id.raw(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(u32);

impl ComponentId {
    /// A placeholder id used before wiring is complete.
    ///
    /// Sending to this id panics; it exists so that components can be
    /// constructed before their peers are known.
    pub const UNWIRED: ComponentId = ComponentId(u32::MAX);

    /// Creates an id from a raw index. Normally only the kernel does this.
    #[inline]
    pub const fn from_raw(raw: u32) -> Self {
        ComponentId(raw)
    }

    /// The raw index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Whether this id is the [`UNWIRED`](Self::UNWIRED) placeholder.
    #[inline]
    pub const fn is_unwired(self) -> bool {
        self.0 == u32::MAX
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unwired() {
            write!(f, "ComponentId(UNWIRED)")
        } else {
            write!(f, "ComponentId({})", self.0)
        }
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A simulated hardware component: anything that receives events.
///
/// Components are single-threaded state machines. The kernel calls
/// [`Component::handle`] once per delivered event; the component may mutate
/// its own state and schedule further events through the [`Ctx`].
///
/// `Send` is a supertrait because the partitioned kernel
/// ([`crate::PartitionedSimulation`]) may run a component's domain on a
/// worker thread. Only one thread ever touches a component at a time — the
/// bound is about *moving* domains to workers, not sharing.
///
/// Implementors must also provide [`Component::as_any_mut`] /
/// [`Component::as_any`] so tests and wiring code can downcast; the
/// [`impl_as_any!`](crate::impl_as_any) macro writes those two methods.
pub trait Component<E>: Any + Send {
    /// A short human-readable name used in diagnostics.
    fn name(&self) -> &str;

    /// Handles one delivered event.
    fn handle(&mut self, ev: E, ctx: &mut Ctx<'_, E>);

    /// Upcasts to [`Any`] for downcasting in tests and wiring helpers.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast to [`Any`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Implements the [`Any`](std::any::Any) plumbing methods of
/// [`Component`] for the enclosing type.
///
/// # Example
///
/// ```
/// use pard_sim::{Component, Ctx};
///
/// struct Sink;
/// impl Component<()> for Sink {
///     fn name(&self) -> &str { "sink" }
///     fn handle(&mut self, _ev: (), _ctx: &mut Ctx<'_, ()>) {}
///     pard_sim::impl_as_any!();
/// }
/// ```
#[macro_export]
macro_rules! impl_as_any {
    () => {
        fn as_any(&self) -> &dyn ::std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn ::std::any::Any {
            self
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwired_is_flagged() {
        assert!(ComponentId::UNWIRED.is_unwired());
        assert!(!ComponentId::from_raw(0).is_unwired());
        assert_eq!(
            format!("{:?}", ComponentId::UNWIRED),
            "ComponentId(UNWIRED)"
        );
        assert_eq!(format!("{}", ComponentId::from_raw(7)), "ComponentId(7)");
    }

    #[test]
    fn ids_order_by_raw_index() {
        assert!(ComponentId::from_raw(1) < ComponentId::from_raw(2));
    }
}
