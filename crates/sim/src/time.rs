//! Simulation time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A simulation timestamp or duration, measured in quarter-nanoseconds.
///
/// The quarter-nanosecond base unit is chosen so that the two clock domains
/// of the paper's evaluation platform (Table 2) are exact:
///
/// * one 2 GHz CPU cycle = 0.5 ns = 2 units,
/// * one DDR3-1600 memory I/O cycle (tCK = 1.25 ns) = 5 units.
///
/// `Time` is used for both instants and durations, mirroring how hardware
/// models reason in "cycles". All arithmetic is checked in debug builds via
/// the standard integer semantics.
///
/// # Example
///
/// ```
/// use pard_sim::Time;
/// let t = Time::from_ns(100) + Time::from_us(1);
/// assert_eq!(t.as_ns(), 1100.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The origin of simulated time (also the zero duration).
    pub const ZERO: Time = Time(0);
    /// The largest representable time; useful as an "infinite" deadline.
    pub const MAX: Time = Time(u64::MAX);
    /// Quarter-nanosecond units per nanosecond.
    pub const UNITS_PER_NS: u64 = 4;

    /// Creates a time from raw quarter-nanosecond units.
    #[inline]
    pub const fn from_units(units: u64) -> Self {
        Time(units)
    }

    /// Creates a time from whole nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit the quarter-nanosecond clock
    /// (release builds would otherwise wrap silently).
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        match ns.checked_mul(Self::UNITS_PER_NS) {
            Some(units) => Time(units),
            None => panic!("Time::from_ns overflows the quarter-nanosecond clock"),
        }
    }

    /// Creates a time from whole microseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit the quarter-nanosecond clock.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        match us.checked_mul(1_000 * Self::UNITS_PER_NS) {
            Some(units) => Time(units),
            None => panic!("Time::from_us overflows the quarter-nanosecond clock"),
        }
    }

    /// Creates a time from whole milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit the quarter-nanosecond clock.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        match ms.checked_mul(1_000_000 * Self::UNITS_PER_NS) {
            Some(units) => Time(units),
            None => panic!("Time::from_ms overflows the quarter-nanosecond clock"),
        }
    }

    /// Creates a time from whole seconds.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit the quarter-nanosecond clock.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        match s.checked_mul(1_000_000_000 * Self::UNITS_PER_NS) {
            Some(units) => Time(units),
            None => panic!("Time::from_secs overflows the quarter-nanosecond clock"),
        }
    }

    /// Raw quarter-nanosecond units.
    #[inline]
    pub const fn units(self) -> u64 {
        self.0
    }

    /// This time expressed in (possibly fractional) nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / Self::UNITS_PER_NS as f64
    }

    /// This time expressed in (possibly fractional) microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.as_ns() / 1_000.0
    }

    /// This time expressed in (possibly fractional) milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.as_ns() / 1_000_000.0
    }

    /// This time expressed in (possibly fractional) seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.as_ns() / 1_000_000_000.0
    }

    /// Saturating subtraction; returns [`Time::ZERO`] instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: Time) -> Time {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: Time) -> Time {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// Rounds this time up to the next multiple of `quantum`.
    ///
    /// Used by clock-domain models (e.g. the DRAM controller) to align
    /// events to their own clock edges.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    #[inline]
    pub fn align_up(self, quantum: Time) -> Time {
        assert!(quantum.0 > 0, "alignment quantum must be non-zero");
        let rem = self.0 % quantum.0;
        if rem == 0 {
            self
        } else {
            Time(self.0 + (quantum.0 - rem))
        }
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Div<Time> for Time {
    type Output = u64;
    #[inline]
    fn div(self, rhs: Time) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Time> for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({} ns)", self.as_ns())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.as_ns();
        if ns >= 1_000_000.0 {
            write!(f, "{:.3} ms", self.as_ms())
        } else if ns >= 1_000.0 {
            write!(f, "{:.3} us", self.as_us())
        } else {
            write!(f, "{ns} ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        assert_eq!(Time::from_ns(1).units(), 4);
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_secs(1), Time::from_ms(1_000));
        assert_eq!(Time::from_secs(2).as_secs(), 2.0);
    }

    #[test]
    fn cpu_and_memory_cycles_are_exact() {
        // 2 GHz CPU cycle = 0.5 ns.
        let cpu = Time::from_units(2);
        assert_eq!(cpu.as_ns(), 0.5);
        // DDR3-1600 tCK = 1.25 ns.
        let mem = Time::from_units(5);
        assert_eq!(mem.as_ns(), 1.25);
        // 11 memory cycles = 13.75 ns (the 11-11-11 timing of Table 2).
        assert_eq!((mem * 11).as_ns(), 13.75);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert_eq!(a + b, Time::from_ns(14));
        assert_eq!(a - b, Time::from_ns(6));
        assert_eq!(a * 3, Time::from_ns(30));
        assert_eq!(a / 2, Time::from_ns(5));
        assert_eq!(a / b, 2);
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn align_up_to_clock_edge() {
        let tck = Time::from_units(5);
        assert_eq!(Time::from_units(0).align_up(tck), Time::from_units(0));
        assert_eq!(Time::from_units(1).align_up(tck), Time::from_units(5));
        assert_eq!(Time::from_units(5).align_up(tck), Time::from_units(5));
        assert_eq!(Time::from_units(6).align_up(tck), Time::from_units(10));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn align_up_zero_quantum_panics() {
        let _ = Time::from_ns(1).align_up(Time::ZERO);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Time::from_ns(5).to_string(), "5 ns");
        assert_eq!(Time::from_us(5).to_string(), "5.000 us");
        assert_eq!(Time::from_ms(5).to_string(), "5.000 ms");
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [Time::from_ns(1), Time::from_ns(2)].into_iter().sum();
        assert_eq!(total, Time::from_ns(3));
    }

    #[test]
    fn constructors_accept_the_largest_representable_values() {
        // The largest input for each unit that still fits in u64 units.
        assert_eq!(Time::from_ns(u64::MAX / 4).units(), (u64::MAX / 4) * 4);
        assert_eq!(Time::from_us(u64::MAX / 4_000).units(), (u64::MAX / 4_000) * 4_000);
        assert_eq!(
            Time::from_ms(u64::MAX / 4_000_000).units(),
            (u64::MAX / 4_000_000) * 4_000_000
        );
        assert_eq!(
            Time::from_secs(u64::MAX / 4_000_000_000).units(),
            (u64::MAX / 4_000_000_000) * 4_000_000_000
        );
    }

    #[test]
    #[should_panic(expected = "Time::from_ns overflows")]
    fn from_ns_overflow_panics() {
        let _ = Time::from_ns(u64::MAX / 4 + 1);
    }

    #[test]
    #[should_panic(expected = "Time::from_us overflows")]
    fn from_us_overflow_panics() {
        let _ = Time::from_us(u64::MAX / 4_000 + 1);
    }

    #[test]
    #[should_panic(expected = "Time::from_ms overflows")]
    fn from_ms_overflow_panics() {
        let _ = Time::from_ms(u64::MAX / 4_000_000 + 1);
    }

    #[test]
    #[should_panic(expected = "Time::from_secs overflows")]
    fn from_secs_overflow_panics() {
        let _ = Time::from_secs(u64::MAX / 4_000_000_000 + 1);
    }
}
