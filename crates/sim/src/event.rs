//! The kernel's event queue.
//!
//! [`EventQueue`] is the hot path of every simulation: the packet-level
//! inner loop does one push and one pop per hop, so scheduler cost
//! dominates wall-clock exactly as it does in ns-3-class network
//! simulators. Instead of a single `BinaryHeap` over the whole pending
//! set, the queue is a two-tier ladder/calendar structure:
//!
//! * a **near-future tier** — a ring of time buckets covering the near
//!   future, where the dense short-delay traffic (cache/DRAM hops a few
//!   ns apart) lands in O(1), with only the currently-active bucket kept
//!   as a (tiny) heap;
//! * an **overflow tier** — a four-ary min-heap for events beyond the
//!   ring's window (statistics windows, poll timers, request gaps).
//!
//! The bucket width is **adaptive**: each queue keeps an exponential
//! moving average of how far ahead of the window pushes land and, at
//! bucket-drain boundaries, narrows or widens the buckets so the active
//! bucket stays a handful of events. Dense traffic (thousands of events
//! spread over a few hundred time units) would otherwise pile the whole
//! backlog into one wide active bucket and degenerate to a single heap —
//! the regime where the fixed-width ladder lost to `BinaryHeap`. Pushes
//! into the overflow tier are deferred into an unsorted tail and
//! bulk-heapified on the next read, so far-future timers cost O(1) at
//! push time.
//!
//! Events migrate from the overflow tier into the ring as simulated time
//! advances, so each event pays at most one small-heap push/pop plus O(1)
//! bucket moves instead of an O(log n) traversal of the full set. The
//! external contract is unchanged: pops come in exact `(time, seq)`
//! order, where `seq` is the monotonic insertion number.

use std::cmp::Ordering;

use crate::component::ComponentId;
use crate::time::Time;

/// An event scheduled for delivery to a component.
#[derive(Debug)]
pub struct ScheduledEvent<E> {
    /// Delivery time.
    pub time: Time,
    /// Monotonic insertion sequence number; breaks ties deterministically.
    pub seq: u64,
    /// Destination component.
    pub dst: ComponentId,
    /// Payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so a `std::collections::BinaryHeap` (a max-heap) pops
        // the earliest event — the queue's original single-heap layout,
        // kept as public API for reference implementations and benches;
        // ties broken by insertion order for determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Log2 of the widest bucket in quarter-nanosecond units: 64 units =
/// 16 ns per bucket, a few cache/DRAM hops. The adaptive width starts
/// here and narrows (down to one unit) when observed inter-event deltas
/// are small.
const MAX_BUCKET_SHIFT: u32 = 6;
/// Ring size (power of two). 64 buckets x 16 ns ≈ 1 µs of near future at
/// the widest setting.
const NUM_BUCKETS: usize = 64;
const RING_MASK: usize = NUM_BUCKETS - 1;
/// EMA seed for the push-distance average; chosen so a fresh queue
/// starts at `MAX_BUCKET_SHIFT` and only narrows on evidence.
const EMA_INIT: u64 = 32 << MAX_BUCKET_SHIFT;
/// Pushes farther ahead than this are timers (statistics windows, poll
/// intervals), not data-path traffic; they bypass the EMA so one
/// far-future event can't widen the buckets under dense load.
const EMA_DIST_CAP: u64 = (NUM_BUCKETS as u64 * 4) << MAX_BUCKET_SHIFT;

/// A four-ary min-heap over `(time, seq)`, used for both the active
/// bucket and the overflow tier.
///
/// A wider fan-out halves the tree depth relative to a binary heap and
/// keeps the children of a node in one cache line. The backing vector is
/// never shrunk or replaced, so steady-state operation performs no
/// allocations.
#[derive(Debug)]
struct FourAryHeap<E> {
    items: Vec<ScheduledEvent<E>>,
    /// Deferred pushes, unsorted. [`FourAryHeap::absorb`] folds them into
    /// `items` before the next read, amortising bursts of far-future
    /// pushes into one bulk heapify instead of a sift each.
    tail: Vec<ScheduledEvent<E>>,
}

impl<E> FourAryHeap<E> {
    fn with_capacity(cap: usize) -> Self {
        FourAryHeap {
            items: Vec::with_capacity(cap),
            tail: Vec::new(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.items.len() + self.tail.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.items.is_empty() && self.tail.is_empty()
    }

    /// The heap minimum's timestamp. Callers must [`absorb`] any deferred
    /// tail first (the active-bucket heap never defers).
    ///
    /// [`absorb`]: FourAryHeap::absorb
    #[inline]
    fn peek_time(&self) -> Option<Time> {
        debug_assert!(self.tail.is_empty());
        self.items.first().map(|ev| ev.time)
    }

    /// Queues `ev` without restoring heap order; O(1).
    #[inline]
    fn push_deferred(&mut self, ev: ScheduledEvent<E>) {
        self.tail.push(ev);
    }

    /// Folds the deferred tail into the heap: a large tail is appended
    /// and bulk-heapified (O(n) total, cheaper than n sifts), a small one
    /// sifted in element by element.
    fn absorb(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        if self.tail.len() > self.items.len() / 4 {
            self.items.append(&mut self.tail);
            self.heapify();
        } else {
            let mut tail = std::mem::take(&mut self.tail);
            for ev in tail.drain(..) {
                self.push(ev);
            }
            // Keep the buffer so steady-state deferral never allocates.
            self.tail = tail;
        }
    }

    fn heapify(&mut self) {
        if self.items.len() > 1 {
            let last_parent = (self.items.len() - 2) / 4;
            for i in (0..=last_parent).rev() {
                self.sift_down(i);
            }
        }
    }

    #[inline]
    fn earlier(a: &ScheduledEvent<E>, b: &ScheduledEvent<E>) -> bool {
        (a.time, a.seq) < (b.time, b.seq)
    }

    /// Both sift loops use the classic "hole" technique (as
    /// `std::collections::BinaryHeap` does): the moving element is read
    /// out once, ancestors/descendants are shifted into the hole, and the
    /// element is written back at its final position — one move per level
    /// instead of a three-move swap.
    ///
    /// SAFETY: within the `unsafe` blocks only `(time, seq)` fields are
    /// compared — plain `Ord` on `Copy` integers, no user code and no
    /// unwind path — so the temporarily-duplicated slot can never be
    /// observed or double-dropped. All indices are bounded by
    /// `items.len()`, which does not change during a sift.
    fn push(&mut self, ev: ScheduledEvent<E>) {
        self.items.push(ev);
        let mut i = self.items.len() - 1;
        unsafe {
            let ptr = self.items.as_mut_ptr();
            let tmp = std::ptr::read(ptr.add(i));
            while i > 0 {
                let parent = (i - 1) / 4;
                if Self::earlier(&tmp, &*ptr.add(parent)) {
                    std::ptr::copy_nonoverlapping(ptr.add(parent), ptr.add(i), 1);
                    i = parent;
                } else {
                    break;
                }
            }
            std::ptr::write(ptr.add(i), tmp);
        }
    }

    /// Sifts `tmp` down from the vacated slot `i`, writing it at its
    /// final position.
    ///
    /// SAFETY: the caller must already have moved the element out of
    /// slot `i` — the slot is a hole that `tmp` logically fills.
    unsafe fn sift_hole(&mut self, mut i: usize, tmp: ScheduledEvent<E>) {
        let len = self.items.len();
        let ptr = self.items.as_mut_ptr();
        loop {
            let first_child = 4 * i + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            let end = (first_child + 4).min(len);
            for c in first_child + 1..end {
                if Self::earlier(&*ptr.add(c), &*ptr.add(best)) {
                    best = c;
                }
            }
            if Self::earlier(&*ptr.add(best), &tmp) {
                std::ptr::copy_nonoverlapping(ptr.add(best), ptr.add(i), 1);
                i = best;
            } else {
                break;
            }
        }
        std::ptr::write(ptr.add(i), tmp);
    }

    fn sift_down(&mut self, i: usize) {
        if i >= self.items.len() {
            return;
        }
        // SAFETY: `tmp` is read out of slot `i`, making it exactly the
        // hole `sift_hole` requires.
        unsafe {
            let tmp = std::ptr::read(self.items.as_mut_ptr().add(i));
            self.sift_hole(i, tmp);
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        debug_assert!(self.tail.is_empty());
        if self.items.is_empty() {
            return None;
        }
        // SAFETY: the root is read out and returned; the tail element is
        // read out and the length shrunk before the tail is sifted into
        // the root hole, so every live slot holds exactly one element
        // and nothing is dropped twice even on an early return.
        unsafe {
            let n = self.items.len() - 1;
            let ptr = self.items.as_mut_ptr();
            let ret = std::ptr::read(ptr);
            self.items.set_len(n);
            if n > 0 {
                let tail = std::ptr::read(ptr.add(n));
                self.sift_hole(0, tail);
            }
            Some(ret)
        }
    }

    /// Moves `bucket`'s events into this (empty) heap and heapifies in
    /// place. Both vectors keep their buffers, so the ladder's bucket →
    /// active-heap transitions are allocation-free.
    fn refill_from(&mut self, bucket: &mut Vec<ScheduledEvent<E>>) {
        debug_assert!(self.is_empty());
        self.items.append(bucket);
        self.heapify();
    }
}

/// A deterministic time-ordered event queue.
///
/// Events with equal timestamps are delivered in insertion order, which
/// (combined with seeded RNGs) makes every simulation run reproducible.
/// Internally a two-tier ladder (bucket ring + four-ary overflow heap);
/// the comment at the top of `crates/sim/src/event.rs` describes the
/// layout.
///
/// # Example
///
/// ```
/// use pard_sim::{ComponentId, EventQueue, Time};
/// let mut q: EventQueue<&str> = EventQueue::new();
/// let dst = ComponentId::from_raw(0);
/// q.push(Time::from_ns(5), dst, "later");
/// q.push(Time::from_ns(1), dst, "sooner");
/// assert_eq!(q.pop().unwrap().event, "sooner");
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The active bucket, kept as a heap: every pending event earlier
    /// than `base + (1 << shift)` lives here, so its minimum is the
    /// queue's global minimum whenever the queue is non-empty.
    cur: FourAryHeap<E>,
    /// `ring[(ring_head + d - 1) & RING_MASK]` holds the span
    /// `[base + d*W, base + (d+1)*W)` for `d` in `1..=NUM_BUCKETS`,
    /// where `W = 1 << shift`.
    ring: Vec<Vec<ScheduledEvent<E>>>,
    /// Occupancy bitmap: bit `s` is set iff `ring[s]` is non-empty, so
    /// `refill` can jump over empty buckets in one `trailing_zeros`
    /// instead of walking them (sparse mid-range traffic — DRAM timing,
    /// refresh — would otherwise pay up to `NUM_BUCKETS` probes per pop).
    ring_occ: u64,
    ring_head: usize,
    /// Events currently stored in the ring (excluding `cur`).
    near_len: usize,
    /// Events at or beyond `base + (NUM_BUCKETS+1)*W`.
    overflow: FourAryHeap<E>,
    /// Start of the active bucket's span, a multiple of `1 << shift`.
    base: u64,
    /// Log2 of the current bucket width, in `[0, MAX_BUCKET_SHIFT]`.
    shift: u32,
    /// EMA of recent push distances (`time - base`, capped at
    /// [`EMA_DIST_CAP`]); drives the adaptive `shift`.
    ema: u64,
    len: usize,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for about `cap` pending events
    /// before the first reallocation of the hot tiers.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            cur: FourAryHeap::with_capacity(cap / 2),
            ring: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            ring_occ: 0,
            ring_head: 0,
            near_len: 0,
            overflow: FourAryHeap::with_capacity(cap / 2),
            base: 0,
            shift: MAX_BUCKET_SHIFT,
            ema: EMA_INIT,
            len: 0,
            next_seq: 0,
        }
    }

    /// Aligns `units` down to the current bucket width.
    #[inline]
    fn align(&self, units: u64) -> u64 {
        units & !((1u64 << self.shift) - 1)
    }

    /// The narrowest bucket shift whose ring still covers a pending span
    /// of `NUM_BUCKETS / 2` events at the observed mean push distance —
    /// i.e. the smallest `s` with `32 << s >= ema`, capped at
    /// [`MAX_BUCKET_SHIFT`].
    #[inline]
    fn shift_for(ema: u64) -> u32 {
        let mut s = 0;
        while s < MAX_BUCKET_SHIFT && (32u64 << s) < ema {
            s += 1;
        }
        s
    }

    /// Schedules `event` for `dst` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is [`ComponentId::UNWIRED`] — that means wiring code
    /// forgot to connect a port.
    pub fn push(&mut self, time: Time, dst: ComponentId, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_with_seq(time, seq, dst, event);
    }

    /// Allocates the next sequence number without scheduling anything.
    ///
    /// The partitioned kernel uses this for cross-domain sends: the seq is
    /// drawn from the *sending* domain's counter at send time and carried
    /// with the event, so the `(time, seq)` merge order at the destination
    /// is fixed by the schedule itself, not by when the remote batch is
    /// ingested.
    #[inline]
    pub fn allocate_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Rebases the insertion-sequence counter (e.g. to
    /// `domain_index << 48`, giving each domain queue a disjoint seq
    /// space so carried cross-domain seqs can never collide with local
    /// ones).
    ///
    /// # Panics
    ///
    /// Panics if `base` would run the counter backwards.
    pub fn set_seq_base(&mut self, base: u64) {
        assert!(
            base >= self.next_seq,
            "seq base must not move the counter backwards"
        );
        self.next_seq = base;
    }

    /// Schedules `event` for `dst` at `time` with a caller-supplied
    /// sequence number (a remote arrival carrying its sender-allocated
    /// seq). Pops still come in exact lexicographic `(time, seq)` order;
    /// the caller is responsible for seq-space disjointness.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is [`ComponentId::UNWIRED`].
    pub fn push_with_seq(&mut self, time: Time, seq: u64, dst: ComponentId, event: E) {
        assert!(
            !dst.is_unwired(),
            "event scheduled for an unwired component port"
        );
        let ev = ScheduledEvent {
            time,
            seq,
            dst,
            event,
        };
        let tu = time.units();
        let dist = tu.saturating_sub(self.base);
        if dist <= EMA_DIST_CAP {
            self.ema = (self.ema * 7 + dist) >> 3;
        }
        if self.len == 0 {
            // Rebase the ladder on the first event so a queue that idles
            // and refills never walks the ring to catch up; an empty ring
            // is also the cheapest point to adopt the adaptive width.
            self.shift = Self::shift_for(self.ema);
            self.base = self.align(tu);
            self.cur.push(ev);
        } else if tu < self.base.saturating_add(1 << self.shift) {
            // Active span, or a push earlier than everything pending
            // (the kernel never does this, but the public API allows it);
            // either way `cur` keeps the global minimum.
            self.cur.push(ev);
        } else {
            let d = (tu - self.base) >> self.shift;
            if d <= NUM_BUCKETS as u64 {
                let slot = (self.ring_head + d as usize - 1) & RING_MASK;
                self.ring[slot].push(ev);
                self.ring_occ |= 1 << slot;
                self.near_len += 1;
            } else {
                self.overflow.push_deferred(ev);
            }
        }
        self.len += 1;
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.cur.pop()?;
        self.len -= 1;
        if self.cur.is_empty() && self.len > 0 {
            self.refill();
        }
        Some(ev)
    }

    /// Re-establishes "`cur` holds the global minimum" after the active
    /// bucket drained: advance the ladder to the next occupied bucket, or
    /// jump straight to the overflow tier's minimum.
    fn refill(&mut self) {
        debug_assert!(self.cur.is_empty() && self.len > 0);
        let desired = Self::shift_for(self.ema);
        if self.near_len > 0 && (desired as i32 - self.shift as i32).abs() >= 2 {
            // The observed traffic density no longer matches the bucket
            // width (hysteresis of one step avoids thrash); redistribute
            // the ring under the new geometry, then bring back any
            // overflow events the new coverage reaches — a widened ring
            // may now cover events deferred under the narrow one, and
            // the jump below must not skip past them.
            self.rebucket(desired);
            self.pull_overflow();
            if !self.cur.is_empty() {
                return;
            }
        }
        if self.near_len > 0 {
            // Jump the window straight to the next occupied bucket.
            debug_assert!(self.ring_occ != 0);
            let rot = self.ring_occ.rotate_right(self.ring_head as u32);
            let d = rot.trailing_zeros() as usize + 1;
            let slot = (self.ring_head + d - 1) & RING_MASK;
            self.base += (d as u64) << self.shift;
            self.ring_head = (self.ring_head + d) & RING_MASK;
            let mut bucket = std::mem::take(&mut self.ring[slot]);
            self.ring_occ &= !(1u64 << slot);
            self.near_len -= bucket.len();
            self.cur.refill_from(&mut bucket);
            // Hand the (drained) buffer back to its slot *before*
            // pulling from overflow: after the head advance this slot is
            // the ring's far end, and the pull may land events in it.
            self.ring[slot] = bucket;
            // The window slid `d` buckets forward; migrate any overflow
            // events the ring now covers. They land at offsets
            // `>= NUM_BUCKETS + 1 - d`, i.e. in the ring, never in `cur`.
            self.pull_overflow();
            return;
        }
        // Everything pending is in the overflow tier: jump the ladder to
        // its minimum instead of sliding bucket by bucket. The ring is
        // empty, so adopting the adaptive width here is free.
        self.overflow.absorb();
        debug_assert!(self.overflow.len() == self.len);
        self.shift = desired;
        let t = self.overflow.peek_time().expect("overflow holds the rest");
        self.base = self.align(t.units());
        self.pull_overflow();
        if self.cur.is_empty() {
            // Only reachable when the window end saturated at u64::MAX;
            // fall back to serving straight from the overflow heap (its
            // pop order is exact, so the contract holds).
            let ev = self.overflow.pop().expect("overflow non-empty");
            self.cur.push(ev);
        }
    }

    /// Redistributes the ring's events under bucket width `1 << new_shift`.
    ///
    /// Only called with `cur` empty. Events may land in `cur` (the new,
    /// narrower active span), back in the ring, or — when the coverage
    /// shrank — in the overflow tier. `cur` keeps the global minimum
    /// afterwards: anything left in the overflow tier was at least
    /// `(NUM_BUCKETS + 1)` old bucket widths past `base`, which the new
    /// active span (at most `1 << MAX_BUCKET_SHIFT` wide) cannot reach.
    fn rebucket(&mut self, new_shift: u32) {
        debug_assert!(self.cur.is_empty());
        let mut scratch: Vec<ScheduledEvent<E>> = Vec::with_capacity(self.near_len);
        let mut occ = self.ring_occ;
        while occ != 0 {
            let slot = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            scratch.append(&mut self.ring[slot]);
        }
        self.ring_occ = 0;
        self.ring_head = 0;
        self.near_len = 0;
        self.shift = new_shift;
        // Narrowing keeps `base` aligned (old widths are multiples of
        // new); widening aligns it down, which only grows the span.
        self.base = self.align(self.base);
        for ev in scratch {
            let tu = ev.time.units();
            if tu < self.base.saturating_add(1 << new_shift) {
                self.cur.push(ev);
            } else {
                let d = (tu - self.base) >> new_shift;
                if d <= NUM_BUCKETS as u64 {
                    let slot = (d as usize - 1) & RING_MASK;
                    self.ring[slot].push(ev);
                    self.ring_occ |= 1 << slot;
                    self.near_len += 1;
                } else {
                    self.overflow.push_deferred(ev);
                }
            }
        }
    }

    /// Moves overflow events that now fall inside the near window into
    /// the ring (or `cur`, after a jump rebases the ladder onto them).
    fn pull_overflow(&mut self) {
        self.overflow.absorb();
        let end = self
            .base
            .saturating_add((NUM_BUCKETS as u64 + 1) << self.shift);
        while let Some(t) = self.overflow.peek_time() {
            if t.units() >= end {
                break;
            }
            let ev = self.overflow.pop().expect("peeked event exists");
            let tu = ev.time.units();
            debug_assert!(tu >= self.base);
            if tu < self.base + (1 << self.shift) {
                self.cur.push(ev);
            } else {
                let d = ((tu - self.base) >> self.shift) as usize;
                let slot = (self.ring_head + d - 1) & RING_MASK;
                self.ring[slot].push(ev);
                self.ring_occ |= 1 << slot;
                self.near_len += 1;
            }
        }
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.cur.peek_time()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dst(i: u32) -> ComponentId {
        ComponentId::from_raw(i)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), dst(0), 30);
        q.push(Time::from_ns(10), dst(0), 10);
        q.push(Time::from_ns(20), dst(0), 20);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(7), dst(0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(9), dst(1), ());
        q.push(Time::from_ns(3), dst(1), ());
        assert_eq!(q.peek_time(), Some(Time::from_ns(3)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "unwired")]
    fn pushing_to_unwired_port_panics() {
        let mut q = EventQueue::new();
        q.push(Time::ZERO, ComponentId::UNWIRED, ());
    }

    #[test]
    fn events_far_beyond_the_ring_come_back_in_order() {
        // One event per tier: active bucket, mid-ring, far overflow.
        let mut q = EventQueue::with_capacity(8);
        q.push(Time::from_us(500), dst(0), "overflow");
        q.push(Time::from_ns(1), dst(0), "cur");
        q.push(Time::from_ns(300), dst(0), "ring");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["cur", "ring", "overflow"]);
    }

    #[test]
    fn equal_time_ties_survive_tier_migration() {
        // Push a far-future event, drain past it so it migrates through
        // the overflow tier, and interleave a same-time push: `seq`
        // order must still decide.
        let far = Time::from_us(300);
        let mut q = EventQueue::new();
        q.push(far, dst(0), 0u32); // seq 0, starts in overflow
        q.push(Time::from_ns(1), dst(0), 99);
        assert_eq!(q.pop().unwrap().event, 99);
        // The jump rebased the ladder onto `far`; a fresh push at the
        // same instant gets a later seq and must pop second.
        q.push(far, dst(0), 1u32); // seq 2
        assert_eq!(q.pop().unwrap().event, 0);
        assert_eq!(q.pop().unwrap().event, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_tracks_reference_order() {
        // Deterministic mixed workload crossing every tier boundary.
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (time units, seq)
        let mut seq = 0u64;
        let mut push = |q: &mut EventQueue<u64>, reference: &mut Vec<(u64, u64)>, units: u64| {
            q.push(Time::from_units(units), dst(0), seq);
            reference.push((units, seq));
            seq += 1;
        };
        for i in 0..2_000u64 {
            // Cluster near the front, sprinkle far-future timers.
            push(&mut q, &mut reference, (i * 7) % 257);
            if i % 5 == 0 {
                push(&mut q, &mut reference, 10_000 + (i * 31) % 5_000);
            }
            if i % 3 == 0 {
                let popped = q.pop().unwrap();
                reference.sort();
                let expect = reference.remove(0);
                assert_eq!((popped.time.units(), popped.seq), expect);
            }
        }
        reference.sort();
        for expect in reference {
            let popped = q.pop().unwrap();
            assert_eq!((popped.time.units(), popped.seq), expect);
        }
        assert!(q.pop().is_none());
    }

    /// Hold-`k` churn against a sort oracle: `steps` pop+push rounds with
    /// per-step delays from `delay(i)`, verifying exact `(time, seq)`
    /// order throughout.
    fn churn_oracle(k: u64, steps: u64, delay: impl Fn(u64) -> u64) -> EventQueue<u64> {
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut seq = 0u64;
        for i in 0..k {
            let t = delay(i);
            q.push(Time::from_units(t), dst(0), seq);
            reference.push((t, seq));
            seq += 1;
        }
        for i in 0..steps {
            let popped = q.pop().unwrap();
            reference.sort_unstable();
            let expect = reference.remove(0);
            assert_eq!((popped.time.units(), popped.seq), expect, "step {i}");
            let t = popped.time.units() + delay(i);
            q.push(Time::from_units(t), dst(0), seq);
            reference.push((t, seq));
            seq += 1;
        }
        reference.sort_unstable();
        for expect in reference {
            let popped = q.pop().unwrap();
            assert_eq!((popped.time.units(), popped.seq), expect);
        }
        assert!(q.pop().is_none());
        q
    }

    #[test]
    fn dense_churn_narrows_the_buckets_and_keeps_order() {
        // 512 pending events spread over <256 units: the fixed-width
        // ladder would pile most of them into a couple of wide buckets.
        // A deterministic LCG supplies deltas in 1..=16.
        let mut x = 0x9e3779b97f4a7c15u64;
        let deltas: Vec<u64> = (0..1024)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 60) + 1
            })
            .collect();
        let q = churn_oracle(512, 4096, |i| deltas[(i % 1024) as usize]);
        assert!(
            q.shift < MAX_BUCKET_SHIFT,
            "dense traffic should have narrowed the buckets (shift {})",
            q.shift
        );
    }

    #[test]
    fn sparse_after_dense_widens_the_buckets_again() {
        // Dense phase drags the width down; a sparse phase (deltas ~40x
        // wider) must widen it back without breaking order.
        let q = churn_oracle(256, 8192, |i| {
            if i < 4096 {
                1 + i % 8
            } else {
                300 + i % 200
            }
        });
        assert!(
            q.shift >= 2,
            "sparse traffic should have widened the buckets (shift {})",
            q.shift
        );
    }

    #[test]
    fn widening_rebucket_recovers_deferred_overflow_events() {
        // Regression: under a narrow width, mid-range events are
        // deferred to the overflow tier; a later widening rebucket must
        // bring them back before the window jumps past them. Dense
        // traffic with mid-range timers sprinkled in, then a sparse
        // phase to force the widening.
        churn_oracle(256, 12_288, |i| {
            if i < 8192 {
                if i % 16 == 0 {
                    300 + (i % 7) * 100
                } else {
                    1 + i % 8
                }
            } else {
                400 + i % 300
            }
        });
    }

    #[test]
    fn deferred_overflow_pushes_pop_in_order() {
        // A burst of far-future timers lands in the overflow tail
        // unsorted; draining must absorb and order them exactly.
        let mut q = EventQueue::new();
        q.push(Time::from_ns(1), dst(0), 0u64);
        let times = [900u64, 300, 700, 300, 500, 100, 800];
        for (i, &us) in times.iter().enumerate() {
            q.push(Time::from_us(us), dst(0), i as u64 + 1);
        }
        assert_eq!(q.len(), times.len() + 1);
        let mut order: Vec<u64> = Vec::new();
        while let Some(ev) = q.pop() {
            order.push(ev.event);
        }
        // Sorted by (time, seq): the tie at 300 µs keeps insertion order.
        assert_eq!(order, vec![0, 6, 2, 4, 5, 3, 7, 1]);
    }

    #[test]
    fn len_counts_all_tiers() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(1), dst(0), ());
        q.push(Time::from_ns(200), dst(0), ());
        q.push(Time::from_ms(5), dst(0), ());
        assert_eq!(q.len(), 3);
        q.pop();
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }
}
