//! The kernel's event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::component::ComponentId;
use crate::time::Time;

/// An event scheduled for delivery to a component.
#[derive(Debug)]
pub struct ScheduledEvent<E> {
    /// Delivery time.
    pub time: Time,
    /// Monotonic insertion sequence number; breaks ties deterministically.
    pub seq: u64,
    /// Destination component.
    pub dst: ComponentId,
    /// Payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the BinaryHeap (a max-heap) pops the earliest event;
        // ties broken by insertion order for determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events with equal timestamps are delivered in insertion order, which
/// (combined with seeded RNGs) makes every simulation run reproducible.
///
/// # Example
///
/// ```
/// use pard_sim::{ComponentId, EventQueue, Time};
/// let mut q: EventQueue<&str> = EventQueue::new();
/// let dst = ComponentId::from_raw(0);
/// q.push(Time::from_ns(5), dst, "later");
/// q.push(Time::from_ns(1), dst, "sooner");
/// assert_eq!(q.pop().unwrap().event, "sooner");
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` for `dst` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is [`ComponentId::UNWIRED`] — that means wiring code
    /// forgot to connect a port.
    pub fn push(&mut self, time: Time, dst: ComponentId, event: E) {
        assert!(
            !dst.is_unwired(),
            "event scheduled for an unwired component port"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time,
            seq,
            dst,
            event,
        });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|ev| ev.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dst(i: u32) -> ComponentId {
        ComponentId::from_raw(i)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), dst(0), 30);
        q.push(Time::from_ns(10), dst(0), 10);
        q.push(Time::from_ns(20), dst(0), 20);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(7), dst(0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(9), dst(1), ());
        q.push(Time::from_ns(3), dst(1), ());
        assert_eq!(q.peek_time(), Some(Time::from_ns(3)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "unwired")]
    fn pushing_to_unwired_port_panics() {
        let mut q = EventQueue::new();
        q.push(Time::ZERO, ComponentId::UNWIRED, ());
    }
}
