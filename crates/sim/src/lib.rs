//! # pard-sim — discrete-event simulation kernel
//!
//! This crate is the foundation of the PARD reproduction: a deterministic,
//! cycle-level discrete-event simulation kernel plus the statistics toolkit
//! used by every modelled hardware component.
//!
//! A simulated machine is a set of [`Component`]s registered with a
//! [`Simulation`]. Components communicate exclusively by scheduling events
//! for each other through [`Ctx`]; the kernel delivers events in
//! `(time, insertion order)` order, which makes every run deterministic for
//! a given seed.
//!
//! Time is measured in quarter-nanoseconds (see [`Time`]) so that both the
//! 2 GHz CPU clock (0.5 ns) and the DDR3-1600 I/O clock (1.25 ns) of the
//! paper's Table 2 are exact integer multiples of the base unit.
//!
//! ## Example
//!
//! ```
//! use pard_sim::{Component, Ctx, Simulation, Time};
//!
//! struct Ping { count: u32 }
//!
//! impl Component<u32> for Ping {
//!     fn name(&self) -> &str { "ping" }
//!     fn handle(&mut self, ev: u32, ctx: &mut Ctx<'_, u32>) {
//!         self.count += ev;
//!         if self.count < 3 {
//!             ctx.send(ctx.self_id(), Time::from_ns(10), 1);
//!         }
//!     }
//!     pard_sim::impl_as_any!();
//! }
//!
//! let mut sim = Simulation::new();
//! let id = sim.add_component(Box::new(Ping { count: 0 }));
//! sim.post(id, Time::ZERO, 1);
//! sim.run();
//! sim.with_component::<Ping, _, _>(id, |p| assert_eq!(p.count, 3));
//! ```
//!
//! # Paper mapping
//!
//! The kernel plays the role of the paper's gem5 substrate (§6: a
//! simulator "based on gem5" with full-system checkpoints): where the
//! authors forked an existing simulator, this reproduction builds the
//! event core from scratch so that determinism, parallel execution
//! ([`par`], the domain-partitioned driver), statistics ([`stats`]),
//! tracing ([`trace`]), and invariant auditing ([`audit`]) are designed
//! in rather than bolted on. Nothing in this crate models a PARD
//! mechanism itself — it is the vessel every mechanism crate
//! (`pard-cache`, `pard-dram`, `pard-io`, `pard-prm`) runs inside.

#![warn(missing_docs)]

pub mod audit;
pub mod check;
mod component;
mod event;
pub mod fault;
mod kernel;
pub mod par;
pub mod rng;
pub mod stats;
pub mod store;
pub mod sync;
mod time;
pub mod trace;

pub use component::{Component, ComponentId};
pub use event::{EventQueue, ScheduledEvent};
pub use kernel::{Ctx, PartitionedSimulation, Simulation};
pub use time::Time;
