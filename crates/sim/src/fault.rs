//! Deterministic fault injection: a seeded schedule of degradation
//! windows that component models consult on their hot paths.
//!
//! PARD's value proposition is differentiated service *preserved under
//! adversity*: a trigger detects an SLA breach from per-DS-id statistics
//! and the PRM reprograms resources to protect the high-priority LDom.
//! Exercising that loop needs faults, and faults in a deterministic
//! simulator must themselves be deterministic. This module provides the
//! schedule: a [`FaultPlan`] — a seed plus a list of [`FaultEvent`]
//! windows — installed process-globally like the trace and audit layers.
//!
//! # Fault taxonomy
//!
//! Every fault is realized *inside* an existing component model as an
//! extra latency or an accounted drop decision, never as an un-conserved
//! packet, so the audit layer stays green under `PARD_AUDIT=strict`:
//!
//! * [`FaultKind::DramSlow`] — bank slowdown / transient stall: extra
//!   service latency on matching banks, which extends data-bus occupancy
//!   and thereby backpressures the command queues (the memory controller
//!   adds it to the transfer time).
//! * [`FaultKind::IdeDegrade`] — quota-engine degradation: the per-tick
//!   quantum shrinks to `quota_pct` percent, and optionally one in
//!   `drop_one_in` queued requests is aborted (completed early with the
//!   bytes moved so far, so the issuing engine never hangs).
//! * [`FaultKind::NicFlap`] — link flap: arriving frames are lost with
//!   probability `loss_pct` percent *before* any DMA or interrupt is
//!   generated, through the NIC's existing drop counter.
//! * [`FaultKind::XbarBackpressure`] — crossbar port backpressure: extra
//!   delivery delay on matching ports.
//!
//! # Determinism contract
//!
//! All injection decisions are pure functions of the installed plan, the
//! query arguments (simulated time, bank, port) and a per-run decision
//! state seeded from [`FaultPlan::seed`] via
//! [`stream_rng`]. The decision state is
//! thread-local and reset by [`begin_run`] (called when a server is
//! constructed), so parallel experiment runs under different
//! `PARD_THREADS` settings replay identical fault decisions: each run
//! owns one worker thread for its whole lifetime, and its decision
//! sequence depends only on its own deterministic event order.
//!
//! # Cost when disabled
//!
//! Same pattern as [`trace`](crate::trace) and [`audit`](crate::audit):
//! a single relaxed atomic load ([`enabled`]) guards every hot path. No
//! plan — or an empty plan — publishes a zero mask, and every simulation
//! byte-identically matches an un-faulted build.
//!
//! The JSON spec format for fault plans (the `PARD_FAULT_PLAN`
//! environment contract) is parsed by `pard-bench::fault_spec`, which
//! depends on this crate — the simulator core stays dependency-free.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use crate::rng::{stream_rng, Rng, Xoshiro256pp};
use crate::time::Time;

/// The four injectable fault classes, one bit each in the global guard
/// mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// DRAM bank slowdowns / transient stalls.
    Dram,
    /// IDE quota-engine degradation and request drops.
    Ide,
    /// NIC link flaps with frame loss.
    Nic,
    /// Crossbar port backpressure.
    Xbar,
}

impl FaultClass {
    /// The class's bit in the guard mask.
    #[inline]
    pub fn bit(self) -> u32 {
        match self {
            FaultClass::Dram => 1 << 0,
            FaultClass::Ide => 1 << 1,
            FaultClass::Nic => 1 << 2,
            FaultClass::Xbar => 1 << 3,
        }
    }

    /// The spec-file name of the class.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Dram => "dram_slow",
            FaultClass::Ide => "ide_degrade",
            FaultClass::Nic => "nic_flap",
            FaultClass::Xbar => "xbar_backpressure",
        }
    }
}

/// What one fault window does while active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Extra service latency on DRAM accesses. `banks = None` slows the
    /// whole device (a transient stall); `Some(list)` slows only the
    /// listed banks.
    DramSlow {
        /// Flat-indexed banks affected, or `None` for all.
        banks: Option<Vec<u32>>,
        /// Extra latency added to each affected access's transfer.
        extra: Time,
    },
    /// IDE quota-engine degradation.
    IdeDegrade {
        /// The per-tick quantum is scaled to this percentage (0–100).
        quota_pct: u32,
        /// Abort one in this many queued requests per scheduling
        /// opportunity; `0` disables request drops.
        drop_one_in: u32,
    },
    /// NIC link flap: arriving frames are lost with this probability in
    /// percent.
    NicFlap {
        /// Frame-loss probability in percent (0–100).
        loss_pct: u32,
    },
    /// Crossbar port backpressure: extra delivery delay.
    XbarBackpressure {
        /// Source port affected, or `None` for every port.
        port: Option<u32>,
        /// Extra delay added to each affected delivery.
        extra: Time,
    },
}

impl FaultKind {
    /// The fault class this kind belongs to.
    pub fn class(&self) -> FaultClass {
        match self {
            FaultKind::DramSlow { .. } => FaultClass::Dram,
            FaultKind::IdeDegrade { .. } => FaultClass::Ide,
            FaultKind::NicFlap { .. } => FaultClass::Nic,
            FaultKind::XbarBackpressure { .. } => FaultClass::Xbar,
        }
    }
}

/// One scheduled fault window, active over `start..end` of simulated
/// time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// First instant the fault is active.
    pub start: Time,
    /// First instant the fault is no longer active (exclusive).
    pub end: Time,
    /// What the window does.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether the window covers `now`.
    #[inline]
    pub fn active_at(&self, now: Time) -> bool {
        self.start <= now && now < self.end
    }
}

/// A seeded schedule of fault events.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the plan's randomized decisions (NIC frame loss).
    pub seed: u64,
    /// The scheduled fault windows.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates an empty plan (installing it is byte-identical to no
    /// plan).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds an event and returns the plan (builder style).
    pub fn with(mut self, start: Time, end: Time, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { start, end, kind });
        self
    }

    /// The union of the classes present in the plan, as a guard mask.
    pub fn class_mask(&self) -> u32 {
        self.events
            .iter()
            .fold(0, |m, e| m | e.kind.class().bit())
    }
}

/// Bitmask of fault classes with at least one scheduled event. Zero
/// (the default) short-circuits every hot-path query to a single
/// relaxed load.
static ACTIVE: AtomicU32 = AtomicU32::new(0);

/// The installed plan. Plain `Mutex` (not `OnceLock`) so tests can
/// install/disable repeatedly.
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

thread_local! {
    /// Per-run decision state; see the module-level determinism
    /// contract.
    static RUN: RefCell<RunState> = const { RefCell::new(RunState { nic_rng: None, ide_considered: 0 }) };
}

struct RunState {
    /// Lazily seeded from the installed plan on first use after
    /// [`begin_run`].
    nic_rng: Option<Xoshiro256pp>,
    /// Requests considered by the IDE drop decider this run.
    ide_considered: u64,
}

fn lock_plan() -> std::sync::MutexGuard<'static, Option<FaultPlan>> {
    PLAN.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether any event of `class` is scheduled — one relaxed atomic load,
/// the only cost fault injection adds to an un-faulted simulation.
#[inline]
pub fn enabled(class: FaultClass) -> bool {
    ACTIVE.load(Ordering::Relaxed) & class.bit() != 0
}

/// Whether a plan is installed (possibly an empty one).
pub fn installed() -> bool {
    lock_plan().is_some()
}

/// Installs `plan` process-globally and publishes its class mask.
///
/// An empty plan publishes a zero mask: every [`enabled`] query stays
/// false and the simulation is byte-identical to an un-faulted run.
pub fn install(plan: FaultPlan) {
    let mask = plan.class_mask();
    *lock_plan() = Some(plan);
    ACTIVE.store(mask, Ordering::Release);
    begin_run();
}

/// Removes the installed plan and clears the guard mask.
pub fn disable() {
    ACTIVE.store(0, Ordering::Release);
    *lock_plan() = None;
    begin_run();
}

/// Resets the calling thread's per-run decision state. Called when a
/// server is constructed, so every run replays the same decision
/// sequence regardless of which worker thread hosts it.
pub fn begin_run() {
    RUN.with(|r| {
        let mut r = r.borrow_mut();
        r.nic_rng = None;
        r.ide_considered = 0;
    });
}

/// Extra DRAM service latency for an access to flat-indexed `bank` at
/// `now`: the sum over active [`FaultKind::DramSlow`] windows matching
/// the bank. Call only behind [`enabled`]`(FaultClass::Dram)`.
pub fn dram_extra_delay(bank: u32, now: Time) -> Time {
    let plan = lock_plan();
    let Some(plan) = plan.as_ref() else {
        return Time::ZERO;
    };
    let mut total = Time::ZERO;
    for e in &plan.events {
        if let FaultKind::DramSlow { banks, extra } = &e.kind {
            if e.active_at(now) && banks.as_ref().is_none_or(|b| b.contains(&bank)) {
                total += *extra;
            }
        }
    }
    total
}

/// The IDE quantum scaling in percent at `now` (100 = undegraded): the
/// minimum `quota_pct` over active [`FaultKind::IdeDegrade`] windows.
pub fn ide_quota_pct(now: Time) -> u32 {
    let plan = lock_plan();
    let Some(plan) = plan.as_ref() else {
        return 100;
    };
    let mut pct = 100;
    for e in &plan.events {
        if let FaultKind::IdeDegrade { quota_pct, .. } = e.kind {
            if e.active_at(now) {
                pct = pct.min(quota_pct.min(100));
            }
        }
    }
    pct
}

/// Whether the IDE quota engine should abort the request it is
/// currently considering. Deterministic: the run-local consideration
/// counter advances only while a drop window is active, and every
/// `drop_one_in`-th consideration drops.
pub fn ide_should_drop(now: Time) -> bool {
    let divisor = {
        let plan = lock_plan();
        let Some(plan) = plan.as_ref() else {
            return false;
        };
        plan.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::IdeDegrade { drop_one_in, .. }
                    if e.active_at(now) && drop_one_in > 0 =>
                {
                    Some(drop_one_in)
                }
                _ => None,
            })
            .min()
    };
    let Some(divisor) = divisor else {
        return false;
    };
    RUN.with(|r| {
        let mut r = r.borrow_mut();
        r.ide_considered += 1;
        r.ide_considered % u64::from(divisor) == 0
    })
}

/// Whether an arriving NIC frame is lost to a link flap at `now`.
/// Randomized with the plan-seeded `fault.nic` stream; the stream is
/// consumed only while a flap window is active, so runs without flap
/// traffic stay byte-identical.
pub fn nic_frame_lost(now: Time) -> bool {
    let (seed, loss_pct) = {
        let plan = lock_plan();
        let Some(plan) = plan.as_ref() else {
            return false;
        };
        let loss = plan
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::NicFlap { loss_pct } if e.active_at(now) => Some(loss_pct),
                _ => None,
            })
            .max();
        match loss {
            Some(l) => (plan.seed, l.min(100)),
            None => return false,
        }
    };
    RUN.with(|r| {
        let mut r = r.borrow_mut();
        let rng = r
            .nic_rng
            .get_or_insert_with(|| stream_rng(seed, "fault.nic"));
        rng.gen_range(0u32..100) < loss_pct
    })
}

/// Extra crossbar delivery delay for a packet entering on `port` at
/// `now`: the sum over active [`FaultKind::XbarBackpressure`] windows
/// matching the port.
pub fn xbar_extra_delay(port: u32, now: Time) -> Time {
    let plan = lock_plan();
    let Some(plan) = plan.as_ref() else {
        return Time::ZERO;
    };
    let mut total = Time::ZERO;
    for e in &plan.events {
        if let FaultKind::XbarBackpressure { port: p, extra } = &e.kind {
            if e.active_at(now) && p.is_none_or(|p| p == port) {
                total += *extra;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Process-global state: everything in one test function (same
    /// discipline as the trace and audit suites) so parallel test
    /// threads cannot race on the installed plan.
    #[test]
    fn fault_global_state_lifecycle() {
        // Nothing installed: every class disabled, queries inert.
        assert!(!installed());
        for c in [
            FaultClass::Dram,
            FaultClass::Ide,
            FaultClass::Nic,
            FaultClass::Xbar,
        ] {
            assert!(!enabled(c));
        }
        assert_eq!(dram_extra_delay(0, Time::from_us(5)), Time::ZERO);
        assert_eq!(ide_quota_pct(Time::from_us(5)), 100);
        assert!(!ide_should_drop(Time::from_us(5)));
        assert!(!nic_frame_lost(Time::from_us(5)));
        assert_eq!(xbar_extra_delay(0, Time::from_us(5)), Time::ZERO);

        // An empty plan publishes a zero mask.
        install(FaultPlan::new(7));
        assert!(installed());
        assert!(!enabled(FaultClass::Dram));

        // A populated plan enables exactly the scheduled classes.
        let plan = FaultPlan::new(42)
            .with(
                Time::from_us(10),
                Time::from_us(20),
                FaultKind::DramSlow {
                    banks: Some(vec![1, 3]),
                    extra: Time::from_ns(100),
                },
            )
            .with(
                Time::from_us(10),
                Time::from_us(20),
                FaultKind::DramSlow {
                    banks: None,
                    extra: Time::from_ns(50),
                },
            )
            .with(
                Time::from_us(10),
                Time::from_us(20),
                FaultKind::IdeDegrade {
                    quota_pct: 40,
                    drop_one_in: 2,
                },
            )
            .with(
                Time::from_us(10),
                Time::from_us(20),
                FaultKind::NicFlap { loss_pct: 100 },
            )
            .with(
                Time::from_us(10),
                Time::from_us(20),
                FaultKind::XbarBackpressure {
                    port: Some(9),
                    extra: Time::from_ns(30),
                },
            );
        install(plan.clone());
        assert_eq!(ACTIVE.load(Ordering::Relaxed), 0b1111);
        assert!(enabled(FaultClass::Dram));
        assert!(enabled(FaultClass::Ide));
        assert!(enabled(FaultClass::Nic));
        assert!(enabled(FaultClass::Xbar));

        // Windows: inactive before start and at/after end (half-open).
        let inside = Time::from_us(15);
        let outside = Time::from_us(20);
        assert_eq!(dram_extra_delay(1, outside), Time::ZERO);
        // Bank 1 matches both the targeted and the all-banks window.
        assert_eq!(dram_extra_delay(1, inside), Time::from_ns(150));
        // Bank 2 matches only the all-banks window.
        assert_eq!(dram_extra_delay(2, inside), Time::from_ns(50));

        assert_eq!(ide_quota_pct(inside), 40);
        assert_eq!(ide_quota_pct(outside), 100);

        assert_eq!(xbar_extra_delay(9, inside), Time::from_ns(30));
        assert_eq!(xbar_extra_delay(8, inside), Time::ZERO);

        // Drop decisions: every 2nd consideration inside the window,
        // none outside, and byte-identical across runs after
        // begin_run().
        begin_run();
        let seq: Vec<bool> = (0..6).map(|_| ide_should_drop(inside)).collect();
        assert_eq!(seq, vec![false, true, false, true, false, true]);
        assert!(!ide_should_drop(outside));
        begin_run();
        let replay: Vec<bool> = (0..6).map(|_| ide_should_drop(inside)).collect();
        assert_eq!(seq, replay);

        // 100 % loss drops every in-window frame; out-of-window frames
        // pass without consuming the stream.
        begin_run();
        assert!(!nic_frame_lost(outside));
        assert!(nic_frame_lost(inside));
        let a: Vec<bool> = (0..8).map(|_| nic_frame_lost(inside)).collect();
        begin_run();
        assert!(nic_frame_lost(inside));
        let b: Vec<bool> = (0..8).map(|_| nic_frame_lost(inside)).collect();
        assert_eq!(a, b);

        // Class helpers round-trip.
        assert_eq!(FaultClass::Dram.name(), "dram_slow");
        assert_eq!(
            plan.events[2].kind.class(),
            FaultClass::Ide
        );

        disable();
        assert!(!installed());
        assert!(!enabled(FaultClass::Nic));
    }
}
