//! First-party synchronisation layer.
//!
//! The workspace used to pull `parking_lot` and `crossbeam` for a mutex
//! and an unbounded channel; both are thin conveniences over what `std`
//! already provides. This module is the single place the rest of the
//! workspace imports locking and channel primitives from, so the
//! implementation can change without touching forty call sites again.

use std::fmt;
pub use std::sync::mpsc::{Receiver, Sender, TryRecvError};
pub use std::sync::MutexGuard;

/// A mutex with the `parking_lot` calling convention: [`lock`](Mutex::lock)
/// returns the guard directly instead of a `Result`.
///
/// Poisoning is deliberately ignored — a panicked simulation thread has
/// already failed the run, and every protected structure here is valid
/// after any partial update (tables of plain integers).
///
/// # Example
///
/// ```
/// use pard_sim::sync::Mutex;
/// let m = Mutex::new(5u32);
/// *m.lock() += 1;
/// assert_eq!(*m.lock(), 6);
/// ```
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// An unbounded MPSC channel (the `crossbeam::channel::unbounded`
/// replacement; senders clone, the receiver polls).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    std::sync::mpsc::channel()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn channel_delivers_in_order() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn debug_formats() {
        let m = Mutex::new(3u8);
        assert!(format!("{m:?}").contains('3'));
    }
}
