//! First-party synchronisation layer.
//!
//! The workspace used to pull `parking_lot` and `crossbeam` for a mutex
//! and an unbounded channel; both are thin conveniences over what `std`
//! already provides. This module is the single place the rest of the
//! workspace imports locking and channel primitives from, so the
//! implementation can change without touching forty call sites again.

use std::fmt;
pub use std::sync::mpsc::{Receiver, Sender, TryRecvError};
pub use std::sync::MutexGuard;

/// A mutex with the `parking_lot` calling convention: [`lock`](Mutex::lock)
/// returns the guard directly instead of a `Result`.
///
/// Poisoning is deliberately ignored — a panicked simulation thread has
/// already failed the run, and every protected structure here is valid
/// after any partial update (tables of plain integers).
///
/// # Example
///
/// ```
/// use pard_sim::sync::Mutex;
/// let m = Mutex::new(5u32);
/// *m.lock() += 1;
/// assert_eq!(*m.lock(), 6);
/// ```
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// An unbounded MPSC channel (the `crossbeam::channel::unbounded`
/// replacement; senders clone, the receiver polls).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    std::sync::mpsc::channel()
}

/// A single-producer single-consumer batch mailbox.
///
/// The partitioned kernel ([`crate::PartitionedSimulation`]) exchanges
/// time-stamped cross-domain event batches through these: exactly one side
/// deposits whole batches with [`put`](Mailbox::put), the other drains them
/// with [`take_into`](Mailbox::take_into). Batches are moved (`Vec` swaps),
/// never copied element-wise under the lock, and the drain hands its spare
/// buffers back so a steady-state epoch exchange performs no allocation.
///
/// Built on the first-party [`Mutex`]; the lock is uncontended by
/// construction (producer and consumer touch it at disjoint points of the
/// epoch barrier), so this is cheaper than a lock-free ring and trivially
/// correct.
pub struct Mailbox<T> {
    slots: Mutex<MailboxInner<T>>,
}

struct MailboxInner<T> {
    full: Vec<Vec<T>>,
    spare: Vec<Vec<T>>,
}

impl<T> Mailbox<T> {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            slots: Mutex::new(MailboxInner {
                full: Vec::new(),
                spare: Vec::new(),
            }),
        }
    }

    /// Takes a recycled buffer (or a fresh one) for the producer to fill.
    pub fn lease(&self) -> Vec<T> {
        self.slots.lock().spare.pop().unwrap_or_default()
    }

    /// Deposits one batch. Empty batches are returned to the spare pool
    /// instead of queueing.
    pub fn put(&self, batch: Vec<T>) {
        let mut inner = self.slots.lock();
        if batch.is_empty() {
            inner.spare.push(batch);
        } else {
            inner.full.push(batch);
        }
    }

    /// Drains every deposited batch, in deposit order, into `out`; the
    /// emptied buffers go back to the spare pool.
    pub fn take_into(&self, out: &mut Vec<T>) {
        let mut inner = self.slots.lock();
        // Move the batch list out so element moves happen off the lock's
        // critical path only in spirit — the lock is uncontended here; the
        // swap keeps the borrow checker happy about `inner`.
        let mut full = std::mem::take(&mut inner.full);
        for batch in &mut full {
            out.append(batch);
        }
        inner.spare.append(&mut full);
    }

    /// Whether any batch is waiting.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().full.is_empty()
    }
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for Mailbox<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Mailbox")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn channel_delivers_in_order() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn debug_formats() {
        let m = Mutex::new(3u8);
        assert!(format!("{m:?}").contains('3'));
    }

    #[test]
    fn mailbox_round_trips_batches_in_order() {
        let mb = Mailbox::new();
        let mut b = mb.lease();
        b.extend([1, 2]);
        mb.put(b);
        mb.put(vec![3]);
        mb.put(Vec::new()); // empty batches recycle, not queue
        let mut out = Vec::new();
        mb.take_into(&mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert!(mb.is_empty());
        // The drained buffers came back to the spare pool.
        assert!(mb.lease().capacity() >= 1);
    }
}
