//! Time-series sampling for the paper's time-axis figures.

use crate::time::Time;

/// A named sequence of `(time, value)` samples.
///
/// Figures 7, 9, and 10 plot per-LDom metrics (LLC occupancy, bandwidth,
/// miss rate) against simulated time; experiment harnesses push one sample
/// per sampling interval into a `TimeSeries` per curve.
///
/// # Example
///
/// ```
/// use pard_sim::stats::TimeSeries;
/// use pard_sim::Time;
///
/// let mut ts = TimeSeries::new("ldom0.llc_mb");
/// ts.push(Time::from_ms(10), 1.5);
/// ts.push(Time::from_ms(20), 2.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.last_value(), Some(2.0));
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    name: String,
    samples: Vec<(Time, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series' display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous sample — series must be
    /// chronological.
    pub fn push(&mut self, t: Time, value: f64) {
        if let Some(&(prev, _)) = self.samples.last() {
            assert!(t >= prev, "time series samples must be chronological");
        }
        self.samples.push((t, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples in chronological order.
    pub fn samples(&self) -> &[(Time, f64)] {
        &self.samples
    }

    /// The most recent value.
    pub fn last_value(&self) -> Option<f64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// Maximum value over the series (`None` when empty).
    pub fn max_value(&self) -> Option<f64> {
        self.samples.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Mean value over samples within `[from, to)`.
    pub fn mean_in(&self, from: Time, to: Time) -> Option<f64> {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut ts = TimeSeries::new("bw");
        assert!(ts.is_empty());
        ts.push(Time::from_ms(1), 1.0);
        ts.push(Time::from_ms(2), 3.0);
        ts.push(Time::from_ms(3), 2.0);
        assert_eq!(ts.name(), "bw");
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.last_value(), Some(2.0));
        assert_eq!(ts.max_value(), Some(3.0));
    }

    #[test]
    fn mean_in_window() {
        let mut ts = TimeSeries::new("x");
        for i in 0..10u64 {
            ts.push(Time::from_ms(i), i as f64);
        }
        let mean = ts.mean_in(Time::from_ms(2), Time::from_ms(5)).unwrap();
        assert_eq!(mean, 3.0); // samples 2,3,4
        assert!(ts.mean_in(Time::from_ms(50), Time::from_ms(60)).is_none());
    }

    #[test]
    fn equal_timestamps_allowed() {
        let mut ts = TimeSeries::new("x");
        ts.push(Time::from_ms(1), 1.0);
        ts.push(Time::from_ms(1), 2.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn time_going_backwards_panics() {
        let mut ts = TimeSeries::new("x");
        ts.push(Time::from_ms(2), 1.0);
        ts.push(Time::from_ms(1), 1.0);
    }

    #[test]
    fn empty_max_is_none() {
        assert_eq!(TimeSeries::new("e").max_value(), None);
        assert_eq!(TimeSeries::new("e").last_value(), None);
    }
}
