//! Windowed event counting.

use crate::time::Time;

/// Counts events in both a cumulative total and a resettable window.
///
/// Control-plane statistics such as "LLC miss rate" and "memory bandwidth"
/// are computed over a sliding measurement window, mirroring how the
/// hardware tables in the paper hold periodically-refreshed counters. The
/// window is advanced explicitly by the owning component
/// (see [`WindowedCounter::roll`]).
///
/// # Example
///
/// ```
/// use pard_sim::stats::WindowedCounter;
/// use pard_sim::Time;
///
/// let mut c = WindowedCounter::new();
/// c.add(10);
/// c.add(5);
/// assert_eq!(c.window(), 15);
/// let closed = c.roll(Time::from_us(1));
/// assert_eq!(closed, 15);
/// assert_eq!(c.window(), 0);
/// assert_eq!(c.total(), 15);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WindowedCounter {
    total: u64,
    window: u64,
    last_window: u64,
    window_started: Time,
    last_span: Time,
}

impl WindowedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` events to both the window and the cumulative total.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.total += n;
        self.window += n;
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Cumulative total since construction.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in the currently open window.
    #[inline]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Count in the most recently closed window.
    #[inline]
    pub fn last_window(&self) -> u64 {
        self.last_window
    }

    /// Closes the current window at time `now`, returning its count and
    /// starting a fresh one. The real span of the closed window (which may
    /// differ from the configured width if the window was closed
    /// irregularly) is retained and available from
    /// [`last_window_span`](WindowedCounter::last_window_span).
    pub fn roll(&mut self, now: Time) -> u64 {
        self.last_window = self.window;
        self.window = 0;
        self.last_span = now.saturating_sub(self.window_started);
        self.window_started = now;
        self.last_window
    }

    /// Start time of the currently open window.
    pub fn window_started(&self) -> Time {
        self.window_started
    }

    /// Opens the current window at `now` without touching any counts.
    ///
    /// Components call this when they arm their first window tick, so the
    /// first [`roll`](WindowedCounter::roll) measures a true span instead
    /// of one stretched back to time zero.
    pub fn open_window_at(&mut self, now: Time) {
        self.window_started = now;
    }

    /// Real duration of the most recently closed window.
    ///
    /// Rates derived from windowed counts must divide by this span — not by
    /// the configured window width — so that irregularly-closed windows
    /// (e.g. a window tick delayed past a run deadline) still produce
    /// correct per-second figures.
    pub fn last_window_span(&self) -> Time {
        self.last_span
    }

    /// Resets everything to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Converts a byte count over a span into GB/s (decimal gigabytes).
///
/// Returns 0.0 for an empty span.
///
/// # Example
///
/// ```
/// use pard_sim::stats::bytes_per_span_to_gbps;
/// use pard_sim::Time;
/// let gbps = bytes_per_span_to_gbps(1_000_000, Time::from_ms(1));
/// assert!((gbps - 1.0).abs() < 1e-9);
/// ```
pub fn bytes_per_span_to_gbps(bytes: u64, span: Time) -> f64 {
    let secs = span.as_secs();
    if secs <= 0.0 {
        0.0
    } else {
        bytes as f64 / 1e9 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_independent_of_total() {
        let mut c = WindowedCounter::new();
        c.incr();
        c.incr();
        c.roll(Time::from_us(10));
        c.add(3);
        assert_eq!(c.total(), 5);
        assert_eq!(c.window(), 3);
        assert_eq!(c.last_window(), 2);
        assert_eq!(c.window_started(), Time::from_us(10));
    }

    #[test]
    fn roll_records_the_real_closed_span() {
        let mut c = WindowedCounter::new();
        c.open_window_at(Time::from_us(5));
        c.add(100);
        // The window closes late: 7 us instead of a nominal 5.
        c.roll(Time::from_us(12));
        assert_eq!(c.last_window_span(), Time::from_us(7));
        assert_eq!(c.last_window(), 100);
        // The next window starts where the last closed.
        c.roll(Time::from_us(13));
        assert_eq!(c.last_window_span(), Time::from_us(1));
        // A roll at (or before) the window start yields an empty span
        // rather than underflowing.
        c.roll(Time::from_us(13));
        assert_eq!(c.last_window_span(), Time::ZERO);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = WindowedCounter::new();
        c.add(9);
        c.roll(Time::from_ns(1));
        c.reset();
        assert_eq!(c.total(), 0);
        assert_eq!(c.window(), 0);
        assert_eq!(c.last_window(), 0);
    }

    #[test]
    fn gbps_conversion() {
        assert_eq!(bytes_per_span_to_gbps(0, Time::from_ms(1)), 0.0);
        assert_eq!(bytes_per_span_to_gbps(100, Time::ZERO), 0.0);
        let gbps = bytes_per_span_to_gbps(2_000_000_000, Time::from_secs(1));
        assert!((gbps - 2.0).abs() < 1e-12);
    }
}
