//! Statistics toolkit shared by all modelled components.
//!
//! Everything a control plane's *statistics table* or an experiment harness
//! needs: windowed counters for rates, latency samples with percentile
//! queries, fixed-bin histograms with CDF export (Figure 11), time-series
//! samplers (Figures 7, 9, 10), and online mean/variance.

mod histogram;
mod latency;
mod online;
mod timeseries;
mod window;

pub use histogram::Histogram;
pub use latency::LatencySample;
pub use online::OnlineStats;
pub use timeseries::TimeSeries;
pub use window::{bytes_per_span_to_gbps, WindowedCounter};
