//! Fixed-bin histograms.

/// A linear fixed-bin histogram over `u64` values.
///
/// Values at or above the upper bound land in a dedicated overflow bin.
/// Used for the queueing-delay distributions of Figure 11, where the x-axis
/// is "delay cycles" with a known range.
///
/// # Example
///
/// ```
/// use pard_sim::stats::Histogram;
/// let mut h = Histogram::new(10, 10); // 10 bins of width 10: [0,100) + overflow
/// h.record(5);
/// h.record(15);
/// h.record(500);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: u64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
}

impl Histogram {
    /// Creates a histogram with `nbins` bins of `bin_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` or `nbins` is zero.
    pub fn new(bin_width: u64, nbins: usize) -> Self {
        assert!(bin_width > 0, "bin width must be non-zero");
        assert!(nbins > 0, "bin count must be non-zero");
        Histogram {
            bin_width,
            bins: vec![0; nbins],
            overflow: 0,
            count: 0,
            sum: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += u128::from(value);
        let idx = (value / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in bin `idx` (`[idx*w, (idx+1)*w)`).
    pub fn bin_count(&self, idx: usize) -> u64 {
        self.bins.get(idx).copied().unwrap_or(0)
    }

    /// Count of values beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of regular bins.
    pub fn nbins(&self) -> usize {
        self.bins.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Cumulative distribution as `(bin_upper_bound, fraction ≤ bound)`
    /// pairs, ending with the overflow mass at `u64::MAX` if non-zero.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::with_capacity(self.bins.len() + 1);
        if self.count == 0 {
            return out;
        }
        let mut acc = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            out.push((
                (i as u64 + 1) * self.bin_width,
                acc as f64 / self.count as f64,
            ));
        }
        if self.overflow > 0 {
            out.push((u64::MAX, 1.0));
        }
        out
    }

    /// Merges another histogram with identical geometry into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bin width or count.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin width mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_expected_bins() {
        let mut h = Histogram::new(4, 4); // [0,4) [4,8) [8,12) [12,16)
        for v in [0, 3, 4, 11, 15, 16, 99] {
            h.record(v);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
        assert_eq!(h.nbins(), 4);
        assert_eq!(h.bin_width(), 4);
    }

    #[test]
    fn mean_matches_sum() {
        let mut h = Histogram::new(1, 4);
        h.record(2);
        h.record(4);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(Histogram::new(1, 1).mean(), 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = Histogram::new(2, 5);
        for v in [1, 1, 3, 9, 50] {
            h.record(v);
        }
        let cdf = h.cdf();
        let mut prev = 0.0;
        for &(_, f) in &cdf {
            assert!(f >= prev);
            prev = f;
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_cdf_is_empty() {
        assert!(Histogram::new(1, 1).cdf().is_empty());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(2, 3);
        let mut b = Histogram::new(2, 3);
        a.record(1);
        b.record(1);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bin_count(0), 2);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "bin width mismatch")]
    fn merge_geometry_mismatch_panics() {
        let mut a = Histogram::new(2, 3);
        let b = Histogram::new(3, 3);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_panics() {
        let _ = Histogram::new(0, 3);
    }
}
