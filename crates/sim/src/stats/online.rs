//! Online (streaming) mean and variance.

/// Welford's online algorithm for mean and variance.
///
/// Useful where storing every sample would be wasteful, e.g. per-DS-id
/// average queueing latency in the memory control plane's statistics table.
///
/// # Example
///
/// ```
/// use pard_sim::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(v);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than two observations).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_batch_computation() {
        let data = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let mut s = OnlineStats::new();
        for &v in &data {
            s.record(v);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-12);
        assert!((s.std_dev() - var.sqrt()).abs() < 1e-12);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn empty_and_single() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        s.record(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn reset_clears() {
        let mut s = OnlineStats::new();
        s.record(1.0);
        s.reset();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
