//! Latency sampling with percentile queries.

use crate::time::Time;

/// A collection of latency samples supporting percentile queries.
///
/// Used for the paper's 95th-percentile memcached response times (Figure 8)
/// and memory queueing delays (Figure 11). Samples are stored exactly (the
/// experiments are bounded), sorted lazily on the first query after an
/// insert.
///
/// # Example
///
/// ```
/// use pard_sim::stats::LatencySample;
/// use pard_sim::Time;
///
/// let mut s = LatencySample::new();
/// for ns in [1u64, 2, 3, 4, 100] {
///     s.record(Time::from_ns(ns));
/// }
/// assert_eq!(s.percentile(0.5), Time::from_ns(3));
/// assert_eq!(s.max(), Time::from_ns(100));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencySample {
    samples: Vec<u64>,
    sorted: bool,
    sum: u128,
}

impl LatencySample {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency observation.
    #[inline]
    pub fn record(&mut self, latency: Time) {
        self.samples.push(latency.units());
        self.sum += u128::from(latency.units());
        self.sorted = false;
    }

    /// Number of recorded samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency, or [`Time::ZERO`] when empty.
    pub fn mean(&self) -> Time {
        if self.samples.is_empty() {
            Time::ZERO
        } else {
            Time::from_units((self.sum / self.samples.len() as u128) as u64)
        }
    }

    /// Largest recorded latency, or [`Time::ZERO`] when empty.
    pub fn max(&self) -> Time {
        self.samples
            .iter()
            .copied()
            .max()
            .map(Time::from_units)
            .unwrap_or(Time::ZERO)
    }

    /// The `p`-quantile (`0.0 ..= 1.0`) using nearest-rank on sorted samples,
    /// or [`Time::ZERO`] when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0 ..= 1.0`.
    pub fn percentile(&mut self, p: f64) -> Time {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.samples.is_empty() {
            return Time::ZERO;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        Time::from_units(self.samples[rank - 1])
    }

    /// Convenience alias for the 95th percentile the paper reports.
    pub fn p95(&mut self) -> Time {
        self.percentile(0.95)
    }

    /// Empirical CDF as `(latency, cumulative_fraction)` pairs, one per
    /// distinct latency value.
    pub fn cdf(&mut self) -> Vec<(Time, f64)> {
        self.ensure_sorted();
        let n = self.samples.len();
        let mut out: Vec<(Time, f64)> = Vec::new();
        for (i, &v) in self.samples.iter().enumerate() {
            let frac = (i + 1) as f64 / n as f64;
            match out.last_mut() {
                Some((t, f)) if t.units() == v => *f = frac,
                _ => out.push((Time::from_units(v), frac)),
            }
        }
        out
    }

    /// Folds another sample set into this one (fleet-level aggregation:
    /// per-tenant samples merge into a per-tier distribution).
    pub fn absorb(&mut self, other: &LatencySample) {
        self.samples.extend_from_slice(&other.samples);
        self.sum += other.sum;
        self.sorted = false;
    }

    /// Drops all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sum = 0;
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[u64]) -> LatencySample {
        let mut s = LatencySample::new();
        for &v in values {
            s.record(Time::from_units(v));
        }
        s
    }

    #[test]
    fn empty_sample_is_zero_everywhere() {
        let mut s = LatencySample::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), Time::ZERO);
        assert_eq!(s.max(), Time::ZERO);
        assert_eq!(s.percentile(0.95), Time::ZERO);
        assert!(s.cdf().is_empty());
    }

    #[test]
    fn nearest_rank_percentiles() {
        let mut s = filled(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(s.percentile(0.0), Time::from_units(10));
        assert_eq!(s.percentile(0.1), Time::from_units(10));
        assert_eq!(s.percentile(0.5), Time::from_units(50));
        assert_eq!(s.percentile(0.95), Time::from_units(100));
        assert_eq!(s.percentile(1.0), Time::from_units(100));
    }

    #[test]
    fn mean_and_max() {
        let s = filled(&[1, 2, 3]);
        assert_eq!(s.mean(), Time::from_units(2));
        assert_eq!(s.max(), Time::from_units(3));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn cdf_collapses_duplicates() {
        let mut s = filled(&[5, 5, 10, 20]);
        let cdf = s.cdf();
        assert_eq!(
            cdf,
            vec![
                (Time::from_units(5), 0.5),
                (Time::from_units(10), 0.75),
                (Time::from_units(20), 1.0),
            ]
        );
    }

    #[test]
    fn records_after_query_resort() {
        let mut s = filled(&[30, 10]);
        assert_eq!(s.percentile(0.5), Time::from_units(10));
        s.record(Time::from_units(1));
        assert_eq!(s.percentile(0.0), Time::from_units(1));
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 1]")]
    fn out_of_range_percentile_panics() {
        let mut s = filled(&[1]);
        let _ = s.percentile(1.5);
    }

    #[test]
    fn clear_empties() {
        let mut s = filled(&[1, 2]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.mean(), Time::ZERO);
    }
}
