//! Structured, per-DS-id event tracing for the simulated machine.
//!
//! Every shared resource in the PARD reproduction (the kernel event loop,
//! the LLC, the memory controller, the I/O bridge, the IDE virtualisation
//! layer, the trigger comparators, and the PRM firmware) can emit trace
//! events tagged with the simulated time, the DS-id the event is attributed
//! to, a category, and a small set of key/value fields. Events are rendered
//! as JSON Lines: one self-contained JSON object per line, always carrying
//! the `time` (nanoseconds), `ds`, `cat`, and `event` keys.
//!
//! Tracing is **zero-cost when disabled**: the only work on a hot path is a
//! single relaxed atomic load through [`enabled`], and instrumented
//! components are expected to guard their field-gathering behind it.
//! Tracing is a pure observer — it never schedules events, never touches
//! any RNG, and therefore never perturbs a simulation's outcome; a traced
//! run produces byte-identical figure output to an untraced run.
//!
//! # Enabling a trace
//!
//! The environment-variable interface (read by [`init_from_env`], which the
//! system model calls at construction):
//!
//! * `PARD_TRACE=<path>` — enable tracing and stream JSONL to `<path>`
//!   (the magic value `-` keeps events only in the in-memory ring).
//! * `PARD_TRACE_FILTER=cat[:ds],...` — restrict to the listed categories,
//!   optionally to specific DS-ids within a category. Unset means every
//!   category and every DS-id. Example: `llc,trigger:2` traces all LLC
//!   events plus trigger events for DS-id 2 only.
//! * `PARD_TRACE_SAMPLE=cat:n,...` — keep only every `n`-th event of a
//!   category, overriding the defaults (kernel 1024, llc 256, dram 256,
//!   all others 1). Sampling bounds trace volume on multi-million-event
//!   figure runs.
//! * `PARD_TRACE_RING=<n>` — in-memory ring capacity in lines
//!   (default 65536).
//!
//! Programmatic use goes through [`TraceConfig`] and [`install`] /
//! [`disable`], which the trace-vs-untraced byte-identity test exercises
//! within a single process.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use crate::time::Time;

/// The event categories a trace line can belong to.
///
/// Each category maps to one bit in the global enable mask, so the hot-path
/// check compiles to a load + test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceCat {
    /// Kernel event-loop deliveries (sampled heavily by default).
    Kernel = 0,
    /// Last-level cache hits, misses, and dirty evictions.
    Llc = 1,
    /// Memory-controller enqueue and issue decisions.
    Dram = 2,
    /// I/O bridge DMA forwarding and drops.
    Io = 3,
    /// IDE virtualisation-layer bandwidth grants and completions.
    Ide = 4,
    /// Trigger comparator fire / re-arm / skip outcomes.
    Trigger = 5,
    /// PRM firmware interrupt servicing.
    Prm = 6,
}

/// Number of categories (size of the per-category filter tables).
const CATS: usize = 7;

impl TraceCat {
    /// Every category, in bit order.
    pub const ALL: [TraceCat; CATS] = [
        TraceCat::Kernel,
        TraceCat::Llc,
        TraceCat::Dram,
        TraceCat::Io,
        TraceCat::Ide,
        TraceCat::Trigger,
        TraceCat::Prm,
    ];

    /// This category's bit in the enable mask.
    #[inline]
    pub const fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// The lower-case name used in trace lines and env filters.
    pub const fn name(self) -> &'static str {
        match self {
            TraceCat::Kernel => "kernel",
            TraceCat::Llc => "llc",
            TraceCat::Dram => "dram",
            TraceCat::Io => "io",
            TraceCat::Ide => "ide",
            TraceCat::Trigger => "trigger",
            TraceCat::Prm => "prm",
        }
    }

    /// Parses a category name as used in `PARD_TRACE_FILTER`.
    pub fn parse(s: &str) -> Option<TraceCat> {
        TraceCat::ALL.iter().copied().find(|c| c.name() == s)
    }
}

/// A field value attached to a trace event.
#[derive(Debug, Clone, Copy)]
pub enum TraceVal {
    /// An unsigned counter / identifier.
    U(u64),
    /// A floating-point measurement.
    F(f64),
    /// A static label.
    S(&'static str),
    /// A boolean flag.
    B(bool),
}

/// Default per-category sampling divisors: the kernel loop and the
/// cache/memory hot paths fire millions of times per figure run, so they
/// keep one event in N by default; control-path categories keep everything.
const DEFAULT_SAMPLE: [u32; CATS] = [1024, 256, 256, 1, 1, 1, 1];

/// Default in-memory ring capacity, in rendered lines.
const DEFAULT_RING: usize = 65_536;

/// Configuration for [`install`].
pub struct TraceConfig {
    /// JSONL sink path; `None` keeps events only in the in-memory ring.
    pub path: Option<std::path::PathBuf>,
    /// Enabled categories and their optional DS-id restrictions
    /// (`None` = all DS-ids).
    pub filter: Vec<(TraceCat, Option<u16>)>,
    /// Per-category sampling overrides `(cat, keep_one_in_n)`.
    pub sample: Vec<(TraceCat, u32)>,
    /// In-memory ring capacity in lines.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            path: None,
            filter: Vec::new(),
            sample: Vec::new(),
            ring_capacity: DEFAULT_RING,
        }
    }
}

impl TraceConfig {
    /// A config that traces every category with default sampling into the
    /// given file.
    pub fn to_file(path: impl Into<std::path::PathBuf>) -> Self {
        TraceConfig {
            path: Some(path.into()),
            ..TraceConfig::default()
        }
    }
}

struct TraceState {
    ring: VecDeque<String>,
    ring_capacity: usize,
    sink: Option<BufWriter<File>>,
    /// Per-category DS-id allow-lists; `None` admits every DS-id.
    ds_filter: [Option<Vec<u16>>; CATS],
    sample_div: [u32; CATS],
    sample_ctr: [u32; CATS],
    emitted: u64,
}

/// Bit i set = category i enabled. The one and only hot-path cost.
static MASK: AtomicU32 = AtomicU32::new(0);
static STATE: Mutex<Option<TraceState>> = Mutex::new(None);

std::thread_local! {
    /// The per-domain trace buffer of the partitioned-kernel domain this
    /// thread is currently executing, if any (see [`enter_domain`]).
    static BUFFER: std::cell::RefCell<Option<DomainBuffer>> =
        const { std::cell::RefCell::new(None) };
}

/// A per-domain trace staging buffer for the partitioned kernel.
///
/// Each domain of a [`PartitionedSimulation`](crate::PartitionedSimulation)
/// owns one. While a domain window executes (on whichever thread), its
/// buffer is parked in thread-local storage via [`enter_domain`]; `emit`
/// then filters and samples against the buffer's *snapshot* of the tracer
/// config, using per-domain sampling counters, and stages the rendered
/// line locally instead of taking the global lock. At each epoch barrier
/// the coordinator drains every domain's lines, merges them by
/// `(time, domain)`, and appends them to the global ring/sink in one pass
/// — so trace output is deterministic regardless of how many worker
/// threads served the domains.
///
/// The snapshot is taken when the partitioned simulation is built;
/// install the tracer first (the system model does).
#[derive(Default)]
pub struct DomainBuffer {
    /// Whether a tracer was installed at snapshot time. An inert buffer
    /// drops events — mixing late-installed global state into some
    /// domains but not others would be nondeterministic.
    active: bool,
    ds_filter: [Option<Vec<u16>>; CATS],
    sample_div: [u32; CATS],
    sample_ctr: [u32; CATS],
    lines: Vec<(u64, String)>,
}

impl DomainBuffer {
    /// Captures the currently-installed tracer's filter/sampling config
    /// (inert if no tracer is installed).
    pub fn snapshot() -> DomainBuffer {
        let guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_ref() {
            Some(s) => DomainBuffer {
                active: true,
                ds_filter: s.ds_filter.clone(),
                sample_div: s.sample_div,
                sample_ctr: [0; CATS],
                lines: Vec::new(),
            },
            None => DomainBuffer::default(),
        }
    }

    /// Takes the staged `(time-units, line)` pairs, in emission order.
    pub fn drain_lines(&mut self) -> Vec<(u64, String)> {
        std::mem::take(&mut self.lines)
    }

    fn emit(&mut self, cat: TraceCat, time: Time, ds: u16, event: &str, fields: &[(&str, TraceVal)]) {
        if !self.active {
            return;
        }
        let ci = cat as usize;
        if let Some(allow) = &self.ds_filter[ci] {
            if !allow.contains(&ds) {
                return;
            }
        }
        let div = self.sample_div[ci];
        if div > 1 {
            let c = self.sample_ctr[ci];
            self.sample_ctr[ci] = (c + 1) % div;
            if c != 0 {
                return;
            }
        }
        self.lines.push((time.units(), render_line(cat, time, ds, event, fields)));
    }
}

/// Parks `buf` in thread-local storage: until [`exit_domain`], every
/// `emit` on this thread stages into it instead of the global tracer.
pub fn enter_domain(buf: DomainBuffer) {
    BUFFER.with(|b| *b.borrow_mut() = Some(buf));
}

/// Removes and returns the thread's domain buffer (inert if none was
/// entered).
pub fn exit_domain() -> DomainBuffer {
    BUFFER.with(|b| b.borrow_mut().take()).unwrap_or_default()
}

/// Appends already-rendered, already-filtered lines (a merged epoch drain
/// from the partitioned kernel) to the global ring and sink.
pub fn sink_lines(lines: impl IntoIterator<Item = String>) {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let Some(state) = guard.as_mut() else {
        return;
    };
    for line in lines {
        if let Some(sink) = state.sink.as_mut() {
            let _ = writeln!(sink, "{line}");
        }
        if state.ring.len() == state.ring_capacity {
            state.ring.pop_front();
        }
        state.ring.push_back(line);
        state.emitted += 1;
    }
}

/// True when `cat` is being traced. This is the hot-path guard: a single
/// relaxed atomic load, so instrumented components pay nothing measurable
/// when tracing is off.
#[inline]
pub fn enabled(cat: TraceCat) -> bool {
    MASK.load(Ordering::Relaxed) & cat.bit() != 0
}

/// Installs the global tracer from `config`. Replaces any previous tracer
/// (flushing it first). Fails only if the sink file cannot be created.
pub fn install(config: TraceConfig) -> std::io::Result<()> {
    let sink = match &config.path {
        Some(p) => Some(BufWriter::new(File::create(p)?)),
        None => None,
    };

    let mut mask = 0u32;
    let mut ds_filter: [Option<Vec<u16>>; CATS] = Default::default();
    if config.filter.is_empty() {
        mask = TraceCat::ALL.iter().map(|c| c.bit()).sum();
    } else {
        for &(cat, ds) in &config.filter {
            mask |= cat.bit();
            if let Some(ds) = ds {
                ds_filter[cat as usize].get_or_insert_with(Vec::new).push(ds);
            }
        }
    }

    let mut sample_div = DEFAULT_SAMPLE;
    for &(cat, div) in &config.sample {
        sample_div[cat as usize] = div.max(1);
    }

    let state = TraceState {
        ring: VecDeque::new(),
        ring_capacity: config.ring_capacity.max(1),
        sink,
        ds_filter,
        sample_div,
        sample_ctr: [0; CATS],
        emitted: 0,
    };

    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(old) = guard.as_mut() {
        if let Some(sink) = old.sink.as_mut() {
            let _ = sink.flush();
        }
    }
    *guard = Some(state);
    // Publish the mask only after the state is in place so a racing emit
    // never observes enabled-but-uninstalled.
    MASK.store(mask, Ordering::Release);
    Ok(())
}

/// Reads `PARD_TRACE` / `PARD_TRACE_FILTER` / `PARD_TRACE_SAMPLE` /
/// `PARD_TRACE_RING` and installs the tracer if `PARD_TRACE` is set.
///
/// Idempotent: only the first call in a process does anything, so every
/// `PardServer` construction may call it unconditionally.
pub fn init_from_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let Ok(path) = std::env::var("PARD_TRACE") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let mut config = TraceConfig {
            path: (path != "-").then(|| path.clone().into()),
            ..TraceConfig::default()
        };
        if let Ok(filter) = std::env::var("PARD_TRACE_FILTER") {
            for term in filter.split(',').filter(|t| !t.is_empty()) {
                let (cat, ds) = match term.split_once(':') {
                    Some((c, d)) => (c, d.parse::<u16>().ok()),
                    None => (term, None),
                };
                match TraceCat::parse(cat.trim()) {
                    Some(cat) => config.filter.push((cat, ds)),
                    None => eprintln!("PARD_TRACE_FILTER: unknown category {cat:?} ignored"),
                }
            }
        }
        if let Ok(sample) = std::env::var("PARD_TRACE_SAMPLE") {
            for term in sample.split(',').filter(|t| !t.is_empty()) {
                if let Some((cat, div)) = term.split_once(':') {
                    if let (Some(cat), Ok(div)) = (TraceCat::parse(cat.trim()), div.parse::<u32>())
                    {
                        config.sample.push((cat, div));
                        continue;
                    }
                }
                eprintln!("PARD_TRACE_SAMPLE: bad term {term:?} ignored");
            }
        }
        if let Ok(ring) = std::env::var("PARD_TRACE_RING") {
            if let Ok(n) = ring.parse::<usize>() {
                config.ring_capacity = n;
            }
        }
        if let Err(e) = install(config) {
            eprintln!("PARD_TRACE: cannot open {path:?}: {e}");
        }
    });
}

/// Flushes any pending sink writes and tears the tracer down, returning the
/// process to the zero-cost disabled state.
pub fn disable() {
    MASK.store(0, Ordering::Release);
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(state) = guard.as_mut() {
        if let Some(sink) = state.sink.as_mut() {
            let _ = sink.flush();
        }
    }
    *guard = None;
}

/// Flushes the JSONL sink (if any) without disabling tracing.
pub fn flush() {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(state) = guard.as_mut() {
        if let Some(sink) = state.sink.as_mut() {
            let _ = sink.flush();
        }
    }
}

/// Emits one trace event.
///
/// Callers should guard the call (and any field gathering) behind
/// [`enabled`]; `emit` re-checks, applies the DS-id filter and the
/// per-category sampling divisor, renders the JSONL line, appends it to the
/// in-memory ring, and streams it to the sink if one is open.
pub fn emit(cat: TraceCat, time: Time, ds: u16, event: &str, fields: &[(&str, TraceVal)]) {
    if !enabled(cat) {
        return;
    }
    // Partitioned-kernel path: if this thread is executing a domain
    // window, stage into the domain's buffer (its own snapshot, its own
    // sampling counters — no global lock, deterministic per domain).
    let buffered = BUFFER.with(|b| {
        if let Some(buf) = b.borrow_mut().as_mut() {
            buf.emit(cat, time, ds, event, fields);
            true
        } else {
            false
        }
    });
    if buffered {
        return;
    }
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let Some(state) = guard.as_mut() else {
        return;
    };
    let ci = cat as usize;
    if let Some(allow) = &state.ds_filter[ci] {
        if !allow.contains(&ds) {
            return;
        }
    }
    let div = state.sample_div[ci];
    if div > 1 {
        let c = state.sample_ctr[ci];
        state.sample_ctr[ci] = (c + 1) % div;
        if c != 0 {
            return;
        }
    }

    let line = render_line(cat, time, ds, event, fields);
    if let Some(sink) = state.sink.as_mut() {
        let _ = writeln!(sink, "{line}");
    }
    if state.ring.len() == state.ring_capacity {
        state.ring.pop_front();
    }
    state.ring.push_back(line);
    state.emitted += 1;
}

/// Renders one trace event as its JSONL line (shared by the global and
/// per-domain paths so both produce identical bytes).
fn render_line(cat: TraceCat, time: Time, ds: u16, event: &str, fields: &[(&str, TraceVal)]) -> String {
    let mut line = String::with_capacity(96);
    use std::fmt::Write as _;
    let _ = write!(
        line,
        "{{\"time\":{},\"ds\":{},\"cat\":\"{}\",\"event\":\"{}\"",
        format_ns(time),
        ds,
        cat.name(),
        event
    );
    for (key, val) in fields {
        let _ = write!(line, ",\"{key}\":");
        match val {
            TraceVal::U(u) => {
                let _ = write!(line, "{u}");
            }
            TraceVal::F(f) if f.is_finite() => {
                let _ = write!(line, "{f}");
            }
            TraceVal::F(_) => line.push_str("null"),
            TraceVal::S(s) => {
                let _ = write!(line, "\"{s}\"");
            }
            TraceVal::B(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line.push('}');
    line
}

/// Renders a [`Time`] as (possibly fractional) nanoseconds without going
/// through floating point when the value is whole. Shared with the audit
/// module so violation lines stamp time identically to trace lines.
pub(crate) fn format_ns(t: Time) -> String {
    let units = t.units();
    let whole = units / Time::UNITS_PER_NS;
    let frac = units % Time::UNITS_PER_NS;
    if frac == 0 {
        format!("{whole}")
    } else {
        // Quarter-ns resolution: the fraction is always .25/.5/.75.
        format!("{whole}.{}", match frac {
            1 => "25",
            2 => "5",
            _ => "75",
        })
    }
}

/// The most recent trace lines still held in the in-memory ring.
pub fn recent_lines() -> Vec<String> {
    let guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    guard
        .as_ref()
        .map(|s| s.ring.iter().cloned().collect())
        .unwrap_or_default()
}

/// Total events emitted (post-filter, post-sampling) since [`install`].
pub fn lines_emitted() -> u64 {
    let guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|s| s.emitted).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global, so every test that installs it runs
    // inside this single test function to avoid cross-test interference.
    #[test]
    fn install_filter_sample_disable_lifecycle() {
        assert!(!enabled(TraceCat::Llc), "tracing must start disabled");
        emit(TraceCat::Llc, Time::from_ns(1), 0, "miss", &[]);
        assert_eq!(lines_emitted(), 0);

        // Ring-only tracer, llc for all ds + trigger for ds 2 only, no
        // sampling so every event lands.
        install(TraceConfig {
            path: None,
            filter: vec![
                (TraceCat::Llc, None),
                (TraceCat::Trigger, Some(2)),
            ],
            sample: vec![(TraceCat::Llc, 1)],
            ring_capacity: 4,
        })
        .unwrap();
        assert!(enabled(TraceCat::Llc));
        assert!(enabled(TraceCat::Trigger));
        assert!(!enabled(TraceCat::Dram));

        emit(
            TraceCat::Llc,
            Time::from_units(9), // 2.25 ns
            3,
            "miss",
            &[("addr", TraceVal::U(64)), ("hot", TraceVal::B(true))],
        );
        emit(TraceCat::Trigger, Time::from_ns(5), 1, "fire", &[]); // filtered out
        emit(TraceCat::Trigger, Time::from_ns(5), 2, "fire", &[("slot", TraceVal::U(0))]);
        emit(TraceCat::Dram, Time::from_ns(6), 2, "issue", &[]); // category off

        let lines = recent_lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"time\":2.25,\"ds\":3,\"cat\":\"llc\",\"event\":\"miss\",\"addr\":64,\"hot\":true}"
        );
        assert_eq!(
            lines[1],
            "{\"time\":5,\"ds\":2,\"cat\":\"trigger\",\"event\":\"fire\",\"slot\":0}"
        );
        assert_eq!(lines_emitted(), 2);

        // Sampling: divisor 3 keeps the 1st, 4th, 7th, ... event.
        install(TraceConfig {
            path: None,
            filter: vec![(TraceCat::Dram, None)],
            sample: vec![(TraceCat::Dram, 3)],
            ring_capacity: 16,
        })
        .unwrap();
        for i in 0..7u64 {
            emit(TraceCat::Dram, Time::from_ns(i), 0, "issue", &[]);
        }
        assert_eq!(lines_emitted(), 3);

        // Ring capacity bounds memory.
        install(TraceConfig {
            path: None,
            filter: vec![(TraceCat::Io, None)],
            sample: Vec::new(),
            ring_capacity: 2,
        })
        .unwrap();
        for i in 0..5u64 {
            emit(TraceCat::Io, Time::from_ns(i), 0, "dma", &[]);
        }
        assert_eq!(recent_lines().len(), 2);
        assert!(recent_lines()[0].contains("\"time\":3"));

        // Per-domain buffers (partitioned kernel): a parked buffer takes
        // the emits with its own snapshot/counters; the drained lines
        // merge through sink_lines byte-identically to the global path.
        install(TraceConfig {
            path: None,
            filter: vec![(TraceCat::Llc, None)],
            sample: vec![(TraceCat::Llc, 1)],
            ring_capacity: 8,
        })
        .unwrap();
        enter_domain(DomainBuffer::snapshot());
        emit(TraceCat::Llc, Time::from_ns(7), 4, "hit", &[]);
        emit(TraceCat::Dram, Time::from_ns(7), 4, "issue", &[]); // category off
        assert_eq!(lines_emitted(), 0, "buffered lines must not hit the ring yet");
        let mut buf = exit_domain();
        let lines = buf.drain_lines();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].0, Time::from_ns(7).units());
        sink_lines(lines.into_iter().map(|(_, l)| l));
        assert_eq!(lines_emitted(), 1);
        assert_eq!(
            recent_lines()[0],
            "{\"time\":7,\"ds\":4,\"cat\":\"llc\",\"event\":\"hit\"}"
        );
        // An inert buffer (no tracer at snapshot time) drops deterministically.
        let inert = DomainBuffer::default();
        enter_domain(inert);
        emit(TraceCat::Llc, Time::from_ns(8), 4, "hit", &[]);
        assert!(exit_domain().drain_lines().is_empty());

        disable();
        assert!(!enabled(TraceCat::Io));
        assert!(recent_lines().is_empty());
    }

    #[test]
    fn category_names_round_trip() {
        for cat in TraceCat::ALL {
            assert_eq!(TraceCat::parse(cat.name()), Some(cat));
        }
        assert_eq!(TraceCat::parse("nope"), None);
        // Bits are distinct.
        let mask: u32 = TraceCat::ALL.iter().map(|c| c.bit()).sum();
        assert_eq!(mask.count_ones() as usize, TraceCat::ALL.len());
    }
}
