//! Structured, per-DS-id event tracing for the simulated machine.
//!
//! Every shared resource in the PARD reproduction (the kernel event loop,
//! the LLC, the memory controller, the I/O bridge, the IDE virtualisation
//! layer, the trigger comparators, and the PRM firmware) can emit trace
//! events tagged with the simulated time, the DS-id the event is attributed
//! to, a category, and a small set of key/value fields. Events are rendered
//! as JSON Lines: one self-contained JSON object per line, always carrying
//! the `time` (nanoseconds), `ds`, `cat`, and `event` keys.
//!
//! Tracing is **zero-cost when disabled**: the only work on a hot path is a
//! single relaxed atomic load through [`enabled`], and instrumented
//! components are expected to guard their field-gathering behind it.
//! Tracing is a pure observer — it never schedules events, never touches
//! any RNG, and therefore never perturbs a simulation's outcome; a traced
//! run produces byte-identical figure output to an untraced run.
//!
//! # Enabling a trace
//!
//! The environment-variable interface (read by [`init_from_env`], which the
//! system model calls at construction):
//!
//! * `PARD_TRACE=<path>` — enable tracing. A path ending in `.ptr` selects
//!   the durable paged binary store ([`crate::store`], the long-horizon
//!   format); any other path streams debug JSONL; the magic value `-`
//!   keeps events only in the in-memory ring.
//! * `PARD_TRACE_FILTER=cat[:ds],...` — restrict to the listed categories,
//!   optionally to specific DS-ids within a category. Unset means every
//!   category and every DS-id. Example: `llc,trigger:2` traces all LLC
//!   events plus trigger events for DS-id 2 only.
//! * `PARD_TRACE_SAMPLE=cat:n,...` — keep only every `n`-th event of a
//!   category, overriding the defaults (kernel 1024, llc 256, dram 256,
//!   all others 1). Sampling bounds trace volume on multi-million-event
//!   figure runs.
//! * `PARD_TRACE_RING=<n>` — in-memory ring capacity in lines
//!   (default 65536; the ring is bypassed by the binary store, whose file
//!   is the durable record).
//! * `PARD_TRACE_PAGE=<bytes>` / `PARD_TRACE_POOL=<pages>` — binary-store
//!   page size and buffer-pool depth (defaults 8192 and 8; only
//!   meaningful with a `.ptr` sink).
//!
//! A malformed value for any of these variables is a **hard error**: the
//! process prints a message naming the variable and exits with status 2,
//! the same contract `PARD_FAULT_PLAN` established — a run asked to trace
//! must never silently trace less (or differently) than asked.
//!
//! Programmatic use goes through [`TraceConfig`] and [`install`] /
//! [`disable`], which the trace-vs-untraced byte-identity test exercises
//! within a single process.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use crate::store::{self, StoreConfig, ValRef};
use crate::time::Time;

/// The event categories a trace line can belong to.
///
/// Each category maps to one bit in the global enable mask, so the hot-path
/// check compiles to a load + test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceCat {
    /// Kernel event-loop deliveries (sampled heavily by default).
    Kernel = 0,
    /// Last-level cache hits, misses, and dirty evictions.
    Llc = 1,
    /// Memory-controller enqueue and issue decisions.
    Dram = 2,
    /// I/O bridge DMA forwarding and drops.
    Io = 3,
    /// IDE virtualisation-layer bandwidth grants and completions.
    Ide = 4,
    /// Trigger comparator fire / re-arm / skip outcomes.
    Trigger = 5,
    /// PRM firmware interrupt servicing.
    Prm = 6,
    /// Fleet-level events: PRM escalations arriving at the fleet manager,
    /// traffic re-shards, and LDom migrations.
    Fleet = 7,
}

/// Number of categories (size of the per-category filter tables).
const CATS: usize = 8;

impl TraceCat {
    /// Every category, in bit order.
    pub const ALL: [TraceCat; CATS] = [
        TraceCat::Kernel,
        TraceCat::Llc,
        TraceCat::Dram,
        TraceCat::Io,
        TraceCat::Ide,
        TraceCat::Trigger,
        TraceCat::Prm,
        TraceCat::Fleet,
    ];

    /// This category's bit in the enable mask.
    #[inline]
    pub const fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// The lower-case name used in trace lines and env filters.
    pub const fn name(self) -> &'static str {
        match self {
            TraceCat::Kernel => "kernel",
            TraceCat::Llc => "llc",
            TraceCat::Dram => "dram",
            TraceCat::Io => "io",
            TraceCat::Ide => "ide",
            TraceCat::Trigger => "trigger",
            TraceCat::Prm => "prm",
            TraceCat::Fleet => "fleet",
        }
    }

    /// Parses a category name as used in `PARD_TRACE_FILTER`.
    pub fn parse(s: &str) -> Option<TraceCat> {
        TraceCat::ALL.iter().copied().find(|c| c.name() == s)
    }
}

/// A field value attached to a trace event.
#[derive(Debug, Clone, Copy)]
pub enum TraceVal {
    /// An unsigned counter / identifier.
    U(u64),
    /// A floating-point measurement.
    F(f64),
    /// A static label.
    S(&'static str),
    /// A boolean flag.
    B(bool),
}

impl TraceVal {
    /// The store's borrowed view of this value (the two enums are kept in
    /// lock-step so both sinks serialise the same information).
    fn as_store_ref(&self) -> ValRef<'static> {
        match *self {
            TraceVal::U(u) => ValRef::U(u),
            TraceVal::F(f) => ValRef::F(f),
            TraceVal::S(s) => ValRef::S(s),
            TraceVal::B(b) => ValRef::B(b),
        }
    }

    /// The store's owned value, for staging in a domain buffer.
    fn to_store_val(self) -> store::Val {
        match self {
            TraceVal::U(u) => store::Val::U(u),
            TraceVal::F(f) => store::Val::F(f),
            TraceVal::S(s) => store::Val::S(s.to_string()),
            TraceVal::B(b) => store::Val::B(b),
        }
    }
}

/// Default per-category sampling divisors: the kernel loop and the
/// cache/memory hot paths fire millions of times per figure run, so they
/// keep one event in N by default; control-path categories keep everything.
const DEFAULT_SAMPLE: [u32; CATS] = [1024, 256, 256, 1, 1, 1, 1, 1];

/// Default in-memory ring capacity, in rendered lines.
const DEFAULT_RING: usize = 65_536;

/// Configuration for [`install`].
#[derive(Debug)]
pub struct TraceConfig {
    /// Sink path; `None` keeps events only in the in-memory ring. A path
    /// ending in `.ptr` selects the durable paged binary store
    /// ([`crate::store`]); anything else streams debug JSONL.
    pub path: Option<std::path::PathBuf>,
    /// Enabled categories and their optional DS-id restrictions
    /// (`None` = all DS-ids).
    pub filter: Vec<(TraceCat, Option<u16>)>,
    /// Per-category sampling overrides `(cat, keep_one_in_n)`; every
    /// divisor must be ≥ 1.
    pub sample: Vec<(TraceCat, u32)>,
    /// In-memory ring capacity in lines; must be ≥ 1.
    pub ring_capacity: usize,
    /// Binary-store page size in bytes (ignored by non-`.ptr` sinks).
    pub page_size: usize,
    /// Binary-store buffer-pool depth in pages (ignored by non-`.ptr`
    /// sinks).
    pub pool_pages: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            path: None,
            filter: Vec::new(),
            sample: Vec::new(),
            ring_capacity: DEFAULT_RING,
            page_size: store::DEFAULT_PAGE_SIZE,
            pool_pages: store::DEFAULT_POOL_PAGES,
        }
    }
}

impl TraceConfig {
    /// A config that traces every category with default sampling into the
    /// given file.
    pub fn to_file(path: impl Into<std::path::PathBuf>) -> Self {
        TraceConfig {
            path: Some(path.into()),
            ..TraceConfig::default()
        }
    }
}

/// Where kept events go after filtering and sampling.
enum Sink {
    /// In-memory ring only.
    Ring,
    /// Debug JSONL stream (plus the ring).
    Jsonl(BufWriter<File>),
    /// Durable paged binary store; bypasses the ring — the file is the
    /// durable record, and skipping the per-event render halves the
    /// kept-event cost.
    Binary(store::TraceWriter),
}

impl Sink {
    fn is_binary(&self) -> bool {
        matches!(self, Sink::Binary(_))
    }

    /// Makes everything accepted so far visible to readers of the sink.
    fn flush(&mut self) {
        match self {
            Sink::Ring => {}
            Sink::Jsonl(w) => {
                let _ = w.flush();
            }
            Sink::Binary(w) => {
                let _ = w.flush();
            }
        }
    }

    /// Final teardown flush (the binary store also syncs to disk).
    fn finish(&mut self) {
        match self {
            Sink::Ring => {}
            Sink::Jsonl(w) => {
                let _ = w.flush();
            }
            Sink::Binary(w) => {
                let _ = w.finish();
            }
        }
    }
}

struct TraceState {
    ring: VecDeque<String>,
    ring_capacity: usize,
    sink: Sink,
    /// Per-category DS-id allow-lists; `None` admits every DS-id.
    ds_filter: [Option<Vec<u16>>; CATS],
    sample_div: [u32; CATS],
    sample_ctr: [u32; CATS],
    emitted: u64,
}

impl TraceState {
    /// Routes one kept event (already filtered/sampled) to the sink.
    ///
    /// The two staged forms exist because the partitioned kernel renders
    /// (or structures) events inside domain windows, where the sink kind
    /// was snapshot at build time. If a differently-sinked tracer was
    /// installed mid-run the forms can mismatch; a line is still recorded
    /// verbatim, and a structured event is re-rendered — neither is
    /// silently dropped.
    fn sink_one(&mut self, staged: Staged) {
        match (&mut self.sink, staged) {
            (Sink::Binary(w), Staged::Event(ev)) => {
                let _ = w.append(ev.cat, ev.time, ev.ds, &ev.event, ev.field_refs());
            }
            (Sink::Binary(w), Staged::Line(line)) => {
                // A pre-rendered line cannot be re-structured; store it as
                // an opaque single-field event rather than lose it.
                debug_assert!(false, "JSONL line staged while binary sink active");
                let _ = w.append(
                    TraceCat::Kernel as u8,
                    0,
                    0,
                    "opaque_line",
                    [("line", ValRef::S(&line))].into_iter(),
                );
            }
            (_, staged) => {
                let line = match staged {
                    Staged::Line(line) => line,
                    Staged::Event(ev) => match render_stored(&ev) {
                        Ok(line) => line,
                        Err(_) => {
                            debug_assert!(false, "staged event with bad category byte");
                            return;
                        }
                    },
                };
                if let Sink::Jsonl(w) = &mut self.sink {
                    let _ = writeln!(w, "{line}");
                }
                if self.ring.len() == self.ring_capacity {
                    self.ring.pop_front();
                }
                self.ring.push_back(line);
            }
        }
        self.emitted += 1;
    }
}

/// Bit i set = category i enabled. The one and only hot-path cost.
static MASK: AtomicU32 = AtomicU32::new(0);
static STATE: Mutex<Option<TraceState>> = Mutex::new(None);

std::thread_local! {
    /// The per-domain trace buffer of the partitioned-kernel domain this
    /// thread is currently executing, if any (see [`enter_domain`]).
    static BUFFER: std::cell::RefCell<Option<DomainBuffer>> =
        const { std::cell::RefCell::new(None) };
}

/// A per-domain trace staging buffer for the partitioned kernel.
///
/// Each domain of a [`PartitionedSimulation`](crate::PartitionedSimulation)
/// owns one. While a domain window executes (on whichever thread), its
/// buffer is parked in thread-local storage via [`enter_domain`]; `emit`
/// then filters and samples against the buffer's *snapshot* of the tracer
/// config, using per-domain sampling counters, and stages the rendered
/// line locally instead of taking the global lock. At each epoch barrier
/// the coordinator drains every domain's lines, merges them by
/// `(time, domain)`, and appends them to the global ring/sink in one pass
/// — so trace output is deterministic regardless of how many worker
/// threads served the domains.
///
/// The snapshot is taken when the partitioned simulation is built;
/// install the tracer first (the system model does).
#[derive(Default)]
pub struct DomainBuffer {
    /// Whether a tracer was installed at snapshot time. An inert buffer
    /// drops events — mixing late-installed global state into some
    /// domains but not others would be nondeterministic.
    active: bool,
    /// Whether the sink at snapshot time was the binary store; selects
    /// whether emits stage structured events or rendered lines.
    binary: bool,
    ds_filter: [Option<Vec<u16>>; CATS],
    sample_div: [u32; CATS],
    sample_ctr: [u32; CATS],
    staged: Vec<(u64, Staged)>,
}

/// One kept trace record staged in a [`DomainBuffer`], in the form the
/// sink active at snapshot time consumes: a rendered JSONL line for the
/// ring/JSONL sinks, a structured [`store::Event`] for the binary store
/// (which must not pay a render, and needs the typed fields for
/// varint/delta encoding).
#[derive(Debug)]
pub enum Staged {
    /// A rendered JSONL line.
    Line(String),
    /// A structured event destined for the binary store.
    Event(store::Event),
}

impl DomainBuffer {
    /// Captures the currently-installed tracer's filter/sampling config
    /// (inert if no tracer is installed).
    pub fn snapshot() -> DomainBuffer {
        let guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_ref() {
            Some(s) => DomainBuffer {
                active: true,
                binary: s.sink.is_binary(),
                ds_filter: s.ds_filter.clone(),
                sample_div: s.sample_div,
                sample_ctr: [0; CATS],
                staged: Vec::new(),
            },
            None => DomainBuffer::default(),
        }
    }

    /// Takes the staged `(time-units, record)` pairs, in emission order.
    pub fn drain_staged(&mut self) -> Vec<(u64, Staged)> {
        std::mem::take(&mut self.staged)
    }

    fn emit(&mut self, cat: TraceCat, time: Time, ds: u16, event: &str, fields: &[(&str, TraceVal)]) {
        if !self.active {
            return;
        }
        let ci = cat as usize;
        if let Some(allow) = &self.ds_filter[ci] {
            if !allow.contains(&ds) {
                return;
            }
        }
        let div = self.sample_div[ci];
        if div > 1 {
            let c = self.sample_ctr[ci];
            self.sample_ctr[ci] = (c + 1) % div;
            if c != 0 {
                return;
            }
        }
        let staged = if self.binary {
            Staged::Event(store::Event {
                cat: cat as u8,
                time: time.units(),
                ds,
                event: event.to_string(),
                fields: fields
                    .iter()
                    .map(|&(k, v)| (k.to_string(), v.to_store_val()))
                    .collect(),
            })
        } else {
            Staged::Line(render_line(cat, time, ds, event, fields))
        };
        self.staged.push((time.units(), staged));
    }
}

/// Parks `buf` in thread-local storage: until [`exit_domain`], every
/// `emit` on this thread stages into it instead of the global tracer.
pub fn enter_domain(buf: DomainBuffer) {
    BUFFER.with(|b| *b.borrow_mut() = Some(buf));
}

/// Removes and returns the thread's domain buffer (inert if none was
/// entered).
pub fn exit_domain() -> DomainBuffer {
    BUFFER.with(|b| b.borrow_mut().take()).unwrap_or_default()
}

/// Appends already-filtered staged records (a merged epoch drain from the
/// partitioned kernel) to the global sink, in the given order.
pub fn sink_staged(records: impl IntoIterator<Item = Staged>) {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let Some(state) = guard.as_mut() else {
        return;
    };
    for staged in records {
        state.sink_one(staged);
    }
}

/// True when `cat` is being traced. This is the hot-path guard: a single
/// relaxed atomic load, so instrumented components pay nothing measurable
/// when tracing is off.
#[inline]
pub fn enabled(cat: TraceCat) -> bool {
    MASK.load(Ordering::Relaxed) & cat.bit() != 0
}

/// Installs the global tracer from `config`. Replaces any previous tracer
/// (flushing — and for a binary store, finishing — it first). Fails if the
/// sink file cannot be created or the store config is invalid.
///
/// # Panics
///
/// Panics on a zero `ring_capacity` or a zero sampling divisor — both are
/// programming errors, and silently "fixing" them would make the tracer
/// behave differently from what the caller asked for. (The env-var path
/// rejects these before ever reaching `install`.)
pub fn install(config: TraceConfig) -> std::io::Result<()> {
    assert!(
        config.ring_capacity > 0,
        "TraceConfig::ring_capacity must be >= 1"
    );
    let sink = match &config.path {
        Some(p) if p.extension().is_some_and(|e| e == "ptr") => {
            let store_config = StoreConfig {
                page_size: config.page_size,
                pool_pages: config.pool_pages,
            };
            Sink::Binary(store::TraceWriter::create(p, store_config)?)
        }
        Some(p) => Sink::Jsonl(BufWriter::new(File::create(p)?)),
        None => Sink::Ring,
    };

    let mut mask = 0u32;
    let mut ds_filter: [Option<Vec<u16>>; CATS] = Default::default();
    if config.filter.is_empty() {
        mask = TraceCat::ALL.iter().map(|c| c.bit()).sum();
    } else {
        for &(cat, ds) in &config.filter {
            mask |= cat.bit();
            if let Some(ds) = ds {
                ds_filter[cat as usize].get_or_insert_with(Vec::new).push(ds);
            }
        }
    }

    let mut sample_div = DEFAULT_SAMPLE;
    for &(cat, div) in &config.sample {
        assert!(
            div > 0,
            "TraceConfig sampling divisor for {} must be >= 1",
            cat.name()
        );
        sample_div[cat as usize] = div;
    }

    let state = TraceState {
        ring: VecDeque::new(),
        ring_capacity: config.ring_capacity,
        sink,
        ds_filter,
        sample_div,
        sample_ctr: [0; CATS],
        emitted: 0,
    };

    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(old) = guard.as_mut() {
        old.sink.finish();
    }
    *guard = Some(state);
    // Publish the mask only after the state is in place so a racing emit
    // never observes enabled-but-uninstalled.
    MASK.store(mask, Ordering::Release);
    Ok(())
}

/// Parses the raw `PARD_TRACE*` values into a [`TraceConfig`].
///
/// Pure (no env access, no I/O) so the unit tests cover every
/// malformed-input path. Every error message names the offending variable
/// and says what would have been accepted — the caller turns `Err` into a
/// hard process exit, per the module-level contract.
fn config_from_env(
    path: &str,
    filter: Option<&str>,
    sample: Option<&str>,
    ring: Option<&str>,
    page: Option<&str>,
    pool: Option<&str>,
) -> Result<TraceConfig, String> {
    let mut config = TraceConfig {
        path: (path != "-").then(|| path.into()),
        ..TraceConfig::default()
    };
    if let Some(filter) = filter {
        for term in filter.split(',').filter(|t| !t.is_empty()) {
            let (cat, ds) = match term.split_once(':') {
                Some((c, d)) => {
                    let ds = d.trim().parse::<u16>().map_err(|_| {
                        format!(
                            "PARD_TRACE_FILTER: bad DS-id {d:?} in term {term:?} \
                             (want cat or cat:ds with ds in 0..=65535)"
                        )
                    })?;
                    (c, Some(ds))
                }
                None => (term, None),
            };
            let cat = TraceCat::parse(cat.trim()).ok_or_else(|| {
                format!(
                    "PARD_TRACE_FILTER: unknown category {:?} \
                     (want kernel|llc|dram|io|ide|trigger|prm)",
                    cat.trim()
                )
            })?;
            config.filter.push((cat, ds));
        }
    }
    if let Some(sample) = sample {
        for term in sample.split(',').filter(|t| !t.is_empty()) {
            let (cat, div) = term
                .split_once(':')
                .ok_or_else(|| format!("PARD_TRACE_SAMPLE: bad term {term:?} (want cat:n)"))?;
            let cat = TraceCat::parse(cat.trim()).ok_or_else(|| {
                format!(
                    "PARD_TRACE_SAMPLE: unknown category {:?} in term {term:?} \
                     (want kernel|llc|dram|io|ide|trigger|prm)",
                    cat.trim()
                )
            })?;
            let div = div.trim().parse::<u32>().map_err(|_| {
                format!("PARD_TRACE_SAMPLE: bad divisor {div:?} in term {term:?} (want an integer)")
            })?;
            if div == 0 {
                return Err(format!(
                    "PARD_TRACE_SAMPLE: divisor must be >= 1 in term {term:?}"
                ));
            }
            config.sample.push((cat, div));
        }
    }
    if let Some(ring) = ring {
        let n = ring.trim().parse::<usize>().map_err(|_| {
            format!("PARD_TRACE_RING: bad capacity {ring:?} (want an integer >= 1)")
        })?;
        if n == 0 {
            return Err("PARD_TRACE_RING: capacity must be >= 1".to_string());
        }
        config.ring_capacity = n;
    }
    if let Some(page) = page {
        let n = page.trim().parse::<usize>().map_err(|_| {
            format!(
                "PARD_TRACE_PAGE: bad page size {page:?} (want an integer number of bytes in {}..={})",
                store::MIN_PAGE_SIZE,
                store::MAX_PAGE_SIZE
            )
        })?;
        if n < store::MIN_PAGE_SIZE || n > store::MAX_PAGE_SIZE {
            return Err(format!(
                "PARD_TRACE_PAGE: page size {n} out of range ({}..={} bytes)",
                store::MIN_PAGE_SIZE,
                store::MAX_PAGE_SIZE
            ));
        }
        config.page_size = n;
    }
    if let Some(pool) = pool {
        let n = pool.trim().parse::<usize>().map_err(|_| {
            format!("PARD_TRACE_POOL: bad pool depth {pool:?} (want an integer >= 1)")
        })?;
        if n == 0 {
            return Err("PARD_TRACE_POOL: pool depth must be >= 1".to_string());
        }
        config.pool_pages = n;
    }
    Ok(config)
}

/// Reads `PARD_TRACE` / `PARD_TRACE_FILTER` / `PARD_TRACE_SAMPLE` /
/// `PARD_TRACE_RING` / `PARD_TRACE_PAGE` / `PARD_TRACE_POOL` and installs
/// the tracer if `PARD_TRACE` is set.
///
/// A malformed value, or a sink file that cannot be created, is a hard
/// error: the process prints a message naming the variable and exits with
/// status 2 — a run asked to trace must never silently trace less than
/// asked (the `PARD_FAULT_PLAN` contract).
///
/// Idempotent: only the first call in a process does anything, so every
/// `PardServer` construction may call it unconditionally.
pub fn init_from_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let Ok(path) = std::env::var("PARD_TRACE") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let filter = std::env::var("PARD_TRACE_FILTER").ok();
        let sample = std::env::var("PARD_TRACE_SAMPLE").ok();
        let ring = std::env::var("PARD_TRACE_RING").ok();
        let page = std::env::var("PARD_TRACE_PAGE").ok();
        let pool = std::env::var("PARD_TRACE_POOL").ok();
        let config = match config_from_env(
            &path,
            filter.as_deref(),
            sample.as_deref(),
            ring.as_deref(),
            page.as_deref(),
            pool.as_deref(),
        ) {
            Ok(config) => config,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        };
        if let Err(e) = install(config) {
            eprintln!("PARD_TRACE: cannot open {path:?}: {e}");
            std::process::exit(2);
        }
    });
}

/// Flushes any pending sink writes (finishing a binary store, which also
/// syncs it to disk) and tears the tracer down, returning the process to
/// the zero-cost disabled state.
pub fn disable() {
    MASK.store(0, Ordering::Release);
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(state) = guard.as_mut() {
        state.sink.finish();
    }
    *guard = None;
}

/// Flushes the sink (if any) without disabling tracing. For a binary
/// store this seals the partial page, so everything emitted so far is
/// visible to a concurrent reader.
pub fn flush() {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(state) = guard.as_mut() {
        state.sink.flush();
    }
}

/// Emits one trace event.
///
/// Callers should guard the call (and any field gathering) behind
/// [`enabled`]; `emit` re-checks, applies the DS-id filter and the
/// per-category sampling divisor, then hands the kept event to the sink:
/// rendered as a JSONL line for the ring/JSONL sinks, appended in binary
/// form (no render) for a `.ptr` store.
pub fn emit(cat: TraceCat, time: Time, ds: u16, event: &str, fields: &[(&str, TraceVal)]) {
    if !enabled(cat) {
        return;
    }
    // Partitioned-kernel path: if this thread is executing a domain
    // window, stage into the domain's buffer (its own snapshot, its own
    // sampling counters — no global lock, deterministic per domain).
    let buffered = BUFFER.with(|b| {
        if let Some(buf) = b.borrow_mut().as_mut() {
            buf.emit(cat, time, ds, event, fields);
            true
        } else {
            false
        }
    });
    if buffered {
        return;
    }
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let Some(state) = guard.as_mut() else {
        return;
    };
    let ci = cat as usize;
    if let Some(allow) = &state.ds_filter[ci] {
        if !allow.contains(&ds) {
            return;
        }
    }
    let div = state.sample_div[ci];
    if div > 1 {
        let c = state.sample_ctr[ci];
        state.sample_ctr[ci] = (c + 1) % div;
        if c != 0 {
            return;
        }
    }

    if let Sink::Binary(w) = &mut state.sink {
        let _ = w.append(
            cat as u8,
            time.units(),
            ds,
            event,
            fields.iter().map(|(k, v)| (*k, v.as_store_ref())),
        );
        state.emitted += 1;
        return;
    }
    let line = render_line(cat, time, ds, event, fields);
    if let Sink::Jsonl(w) = &mut state.sink {
        let _ = writeln!(w, "{line}");
    }
    if state.ring.len() == state.ring_capacity {
        state.ring.pop_front();
    }
    state.ring.push_back(line);
    state.emitted += 1;
}

/// Renders one trace event as its JSONL line (shared by the global and
/// per-domain paths so both produce identical bytes).
fn render_line(cat: TraceCat, time: Time, ds: u16, event: &str, fields: &[(&str, TraceVal)]) -> String {
    let mut line = render_prefix(cat, time.units(), ds, event);
    render_fields(&mut line, fields.iter().map(|(k, v)| (*k, v.as_store_ref())));
    line.push('}');
    line
}

/// Re-renders a decoded [`store::Event`] as the JSONL line the `.jsonl`
/// sink would have produced for the same emission. This is the
/// byte-equivalence contract between the two trace formats: decoding a
/// `.ptr` file and rendering each event through this function yields the
/// exact bytes the JSONL sink writes.
///
/// # Errors
///
/// Fails (with a description) if the event's category byte does not name
/// a [`TraceCat`] — the store does not interpret the byte, so a foreign
/// or corrupt file surfaces here.
pub fn render_stored(ev: &store::Event) -> Result<String, String> {
    let cat = TraceCat::ALL
        .get(ev.cat as usize)
        .copied()
        .ok_or_else(|| format!("bad category byte {} (want 0..{CATS})", ev.cat))?;
    let mut line = render_prefix(cat, ev.time, ev.ds, &ev.event);
    render_fields(&mut line, ev.field_refs());
    line.push('}');
    Ok(line)
}

/// The fixed head of every JSONL line: time, ds, cat, event.
fn render_prefix(cat: TraceCat, time_units: u64, ds: u16, event: &str) -> String {
    let mut line = String::with_capacity(96);
    use std::fmt::Write as _;
    let _ = write!(
        line,
        "{{\"time\":{},\"ds\":{},\"cat\":\"{}\",\"event\":\"{}\"",
        format_ns(Time::from_units(time_units)),
        ds,
        cat.name(),
        event
    );
    line
}

/// Appends the `,"key":value` tail fields. Taking [`ValRef`] lets the
/// live-emission path ([`TraceVal`]) and the store-decode path
/// ([`store::Event`]) share one formatter, which is what makes the two
/// sinks byte-equivalent by construction.
fn render_fields<'a>(line: &mut String, fields: impl Iterator<Item = (&'a str, ValRef<'a>)>) {
    use std::fmt::Write as _;
    for (key, val) in fields {
        let _ = write!(line, ",\"{key}\":");
        match val {
            ValRef::U(u) => {
                let _ = write!(line, "{u}");
            }
            ValRef::F(f) if f.is_finite() => {
                let _ = write!(line, "{f}");
            }
            ValRef::F(_) => line.push_str("null"),
            ValRef::S(s) => {
                let _ = write!(line, "\"{s}\"");
            }
            ValRef::B(b) => line.push_str(if b { "true" } else { "false" }),
        }
    }
}

/// Renders a [`Time`] as (possibly fractional) nanoseconds without going
/// through floating point when the value is whole. Shared with the audit
/// module so violation lines stamp time identically to trace lines.
pub(crate) fn format_ns(t: Time) -> String {
    let units = t.units();
    let whole = units / Time::UNITS_PER_NS;
    let frac = units % Time::UNITS_PER_NS;
    if frac == 0 {
        format!("{whole}")
    } else {
        // Quarter-ns resolution: the fraction is always .25/.5/.75.
        format!("{whole}.{}", match frac {
            1 => "25",
            2 => "5",
            _ => "75",
        })
    }
}

/// The most recent trace lines still held in the in-memory ring.
///
/// The binary store bypasses the ring (its file is the durable record),
/// so this is empty while a `.ptr` sink is active.
pub fn recent_lines() -> Vec<String> {
    let guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    guard
        .as_ref()
        .map(|s| s.ring.iter().cloned().collect())
        .unwrap_or_default()
}

/// Total events emitted (post-filter, post-sampling) since [`install`].
pub fn lines_emitted() -> u64 {
    let guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|s| s.emitted).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global, so every test that installs it runs
    // inside this single test function to avoid cross-test interference.
    #[test]
    fn install_filter_sample_disable_lifecycle() {
        assert!(!enabled(TraceCat::Llc), "tracing must start disabled");
        emit(TraceCat::Llc, Time::from_ns(1), 0, "miss", &[]);
        assert_eq!(lines_emitted(), 0);

        // Ring-only tracer, llc for all ds + trigger for ds 2 only, no
        // sampling so every event lands.
        install(TraceConfig {
            path: None,
            filter: vec![
                (TraceCat::Llc, None),
                (TraceCat::Trigger, Some(2)),
            ],
            sample: vec![(TraceCat::Llc, 1)],
            ring_capacity: 4,
            ..TraceConfig::default()
        })
        .unwrap();
        assert!(enabled(TraceCat::Llc));
        assert!(enabled(TraceCat::Trigger));
        assert!(!enabled(TraceCat::Dram));

        emit(
            TraceCat::Llc,
            Time::from_units(9), // 2.25 ns
            3,
            "miss",
            &[("addr", TraceVal::U(64)), ("hot", TraceVal::B(true))],
        );
        emit(TraceCat::Trigger, Time::from_ns(5), 1, "fire", &[]); // filtered out
        emit(TraceCat::Trigger, Time::from_ns(5), 2, "fire", &[("slot", TraceVal::U(0))]);
        emit(TraceCat::Dram, Time::from_ns(6), 2, "issue", &[]); // category off

        let lines = recent_lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"time\":2.25,\"ds\":3,\"cat\":\"llc\",\"event\":\"miss\",\"addr\":64,\"hot\":true}"
        );
        assert_eq!(
            lines[1],
            "{\"time\":5,\"ds\":2,\"cat\":\"trigger\",\"event\":\"fire\",\"slot\":0}"
        );
        assert_eq!(lines_emitted(), 2);

        // Sampling: divisor 3 keeps the 1st, 4th, 7th, ... event.
        install(TraceConfig {
            path: None,
            filter: vec![(TraceCat::Dram, None)],
            sample: vec![(TraceCat::Dram, 3)],
            ring_capacity: 16,
            ..TraceConfig::default()
        })
        .unwrap();
        for i in 0..7u64 {
            emit(TraceCat::Dram, Time::from_ns(i), 0, "issue", &[]);
        }
        assert_eq!(lines_emitted(), 3);

        // Ring capacity bounds memory.
        install(TraceConfig {
            path: None,
            filter: vec![(TraceCat::Io, None)],
            sample: Vec::new(),
            ring_capacity: 2,
            ..TraceConfig::default()
        })
        .unwrap();
        for i in 0..5u64 {
            emit(TraceCat::Io, Time::from_ns(i), 0, "dma", &[]);
        }
        assert_eq!(recent_lines().len(), 2);
        assert!(recent_lines()[0].contains("\"time\":3"));

        // Per-domain buffers (partitioned kernel): a parked buffer takes
        // the emits with its own snapshot/counters; the drained records
        // merge through sink_staged byte-identically to the global path.
        install(TraceConfig {
            path: None,
            filter: vec![(TraceCat::Llc, None)],
            sample: vec![(TraceCat::Llc, 1)],
            ring_capacity: 8,
            ..TraceConfig::default()
        })
        .unwrap();
        enter_domain(DomainBuffer::snapshot());
        emit(TraceCat::Llc, Time::from_ns(7), 4, "hit", &[]);
        emit(TraceCat::Dram, Time::from_ns(7), 4, "issue", &[]); // category off
        assert_eq!(lines_emitted(), 0, "buffered lines must not hit the ring yet");
        let mut buf = exit_domain();
        let staged = buf.drain_staged();
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].0, Time::from_ns(7).units());
        assert!(matches!(staged[0].1, Staged::Line(_)));
        sink_staged(staged.into_iter().map(|(_, s)| s));
        assert_eq!(lines_emitted(), 1);
        assert_eq!(
            recent_lines()[0],
            "{\"time\":7,\"ds\":4,\"cat\":\"llc\",\"event\":\"hit\"}"
        );
        // An inert buffer (no tracer at snapshot time) drops deterministically.
        let inert = DomainBuffer::default();
        enter_domain(inert);
        emit(TraceCat::Llc, Time::from_ns(8), 4, "hit", &[]);
        assert!(exit_domain().drain_staged().is_empty());

        disable();
        assert!(!enabled(TraceCat::Io));
        assert!(recent_lines().is_empty());

        // Binary sink (`.ptr`): the global path appends structured events,
        // domain buffers stage structured events, the ring stays empty,
        // and decoding + render_stored reproduces the exact JSONL bytes.
        let dir = std::env::temp_dir().join(format!("pard-trace-bin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ptr = dir.join("t.ptr");
        install(TraceConfig {
            path: Some(ptr.clone()),
            filter: vec![(TraceCat::Llc, None), (TraceCat::Ide, None)],
            sample: vec![(TraceCat::Llc, 1)],
            ring_capacity: 4,
            ..TraceConfig::default()
        })
        .unwrap();
        emit(
            TraceCat::Llc,
            Time::from_units(9), // 2.25 ns
            3,
            "miss",
            &[
                ("addr", TraceVal::U(64)),
                ("way", TraceVal::S("mru")),
                ("hot", TraceVal::B(true)),
                ("occ", TraceVal::F(0.5)),
            ],
        );
        enter_domain(DomainBuffer::snapshot());
        emit(TraceCat::Ide, Time::from_ns(5), 2, "grant", &[("bytes", TraceVal::U(4096))]);
        let mut buf = exit_domain();
        let staged = buf.drain_staged();
        assert_eq!(staged.len(), 1);
        assert!(
            matches!(staged[0].1, Staged::Event(_)),
            "binary-mode domain buffers must stage structured events"
        );
        sink_staged(staged.into_iter().map(|(_, s)| s));
        assert_eq!(lines_emitted(), 2);
        assert!(recent_lines().is_empty(), "binary sink bypasses the ring");
        disable(); // finishes the store

        let mut reader = store::TraceReader::open(&ptr).unwrap();
        let decoded: Vec<String> = reader
            .events()
            .map(|ev| render_stored(&ev.unwrap()).unwrap())
            .collect();
        assert_eq!(
            decoded,
            vec![
                "{\"time\":2.25,\"ds\":3,\"cat\":\"llc\",\"event\":\"miss\",\
                 \"addr\":64,\"way\":\"mru\",\"hot\":true,\"occ\":0.5}"
                    .to_string(),
                "{\"time\":5,\"ds\":2,\"cat\":\"ide\",\"event\":\"grant\",\"bytes\":4096}"
                    .to_string(),
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn render_stored_rejects_bad_category_byte() {
        let ev = store::Event {
            cat: 42,
            time: 0,
            ds: 0,
            event: "x".to_string(),
            fields: Vec::new(),
        };
        let err = render_stored(&ev).unwrap_err();
        assert!(err.contains("bad category byte 42"), "{err}");
    }

    // config_from_env is pure, so the hard-error contract is testable
    // without touching process env or the global tracer.
    #[test]
    fn env_config_accepts_the_documented_surface() {
        let c = config_from_env(
            "out.ptr",
            Some("llc,trigger:2"),
            Some("kernel:64"),
            Some("128"),
            Some("4096"),
            Some("2"),
        )
        .unwrap();
        assert_eq!(c.path.as_deref(), Some(std::path::Path::new("out.ptr")));
        assert_eq!(c.filter, vec![(TraceCat::Llc, None), (TraceCat::Trigger, Some(2))]);
        assert_eq!(c.sample, vec![(TraceCat::Kernel, 64)]);
        assert_eq!(c.ring_capacity, 128);
        assert_eq!(c.page_size, 4096);
        assert_eq!(c.pool_pages, 2);
        // `-` = ring only; unset extras keep defaults.
        let c = config_from_env("-", None, None, None, None, None).unwrap();
        assert!(c.path.is_none());
        assert_eq!(c.ring_capacity, DEFAULT_RING);
    }

    #[test]
    fn env_config_rejects_malformed_values_naming_the_variable() {
        let cases: [(&str, Option<&str>, Option<&str>, Option<&str>, Option<&str>, Option<&str>, &str); 9] = [
            ("t", Some("bogus"), None, None, None, None, "PARD_TRACE_FILTER"),
            ("t", Some("llc:banana"), None, None, None, None, "PARD_TRACE_FILTER"),
            ("t", None, Some("llc"), None, None, None, "PARD_TRACE_SAMPLE"),
            ("t", None, Some("bogus:2"), None, None, None, "PARD_TRACE_SAMPLE"),
            ("t", None, Some("llc:0"), None, None, None, "PARD_TRACE_SAMPLE"),
            ("t", None, None, Some("many"), None, None, "PARD_TRACE_RING"),
            ("t", None, None, Some("0"), None, None, "PARD_TRACE_RING"),
            ("t", None, None, None, Some("17"), None, "PARD_TRACE_PAGE"),
            ("t", None, None, None, None, Some("0"), "PARD_TRACE_POOL"),
        ];
        for (path, filter, sample, ring, page, pool, var) in cases {
            let err = config_from_env(path, filter, sample, ring, page, pool)
                .expect_err("malformed value must be rejected");
            assert!(
                err.starts_with(var),
                "error {err:?} must name the variable {var}"
            );
        }
    }

    #[test]
    fn category_names_round_trip() {
        for cat in TraceCat::ALL {
            assert_eq!(TraceCat::parse(cat.name()), Some(cat));
        }
        assert_eq!(TraceCat::parse("nope"), None);
        // Bits are distinct.
        let mask: u32 = TraceCat::ALL.iter().map(|c| c.bit()).sum();
        assert_eq!(mask.count_ones() as usize, TraceCat::ALL.len());
    }
}
