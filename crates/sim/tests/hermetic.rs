//! Hermeticity tests: the first-party RNG must match the published
//! reference vectors for SplitMix64 and xoshiro256++, and the stream
//! derivation must stay bit-stable forever — every figure harness's
//! reproducibility contract hangs off these constants.

use pard_sim::rng::{fnv1a, splitmix64, stream_rng, Rng, SplitMix64, Xoshiro256pp};

/// Reference vectors from the SplitMix64 reference implementation
/// (Steele, Lea & Flood; the same constants appear in the xoshiro
/// authors' seeding recipe).
#[test]
fn splitmix64_known_answers() {
    let mut sm = SplitMix64::new(0);
    let got: Vec<u64> = (0..5).map(|_| sm.next_u64()).collect();
    assert_eq!(
        got,
        [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ]
    );

    // The widely-cited seed-1234567 triple.
    let mut sm = SplitMix64::new(1_234_567);
    assert_eq!(sm.next_u64(), 6_457_827_717_110_365_317);
    assert_eq!(sm.next_u64(), 3_203_168_211_198_807_973);
    assert_eq!(sm.next_u64(), 9_817_491_932_198_370_423);
}

/// The one-shot mixer is the SplitMix64 output function: stepping the
/// sequential generator once from seed `x` must agree with it.
#[test]
fn splitmix64_mixer_agrees_with_generator() {
    for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
        assert_eq!(SplitMix64::new(seed).next_u64(), splitmix64(seed));
    }
}

/// xoshiro256++ from the canonical state `[1, 2, 3, 4]`; first outputs of
/// the reference C implementation (Blackman & Vigna).
#[test]
fn xoshiro256pp_known_answers() {
    let mut x = Xoshiro256pp::from_state([1, 2, 3, 4]);
    let got: Vec<u64> = (0..6).map(|_| x.next_u64()).collect();
    assert_eq!(
        got,
        [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
            9_973_669_472_204_895_162,
        ]
    );
}

/// SplitMix64-expanded seeding, pinned so experiment seeds stay stable
/// across refactors.
#[test]
fn seed_from_u64_is_pinned() {
    let mut x = Xoshiro256pp::seed_from_u64(42);
    let got: Vec<u64> = (0..4).map(|_| x.next_u64()).collect();
    assert_eq!(
        got,
        [
            0xD076_4D4F_4476_689F,
            0x519E_4174_576F_3791,
            0xFBE0_7CFB_0C24_ED8C,
            0xB37D_9F60_0CD8_35B8,
        ]
    );
}

/// The `(seed, stream)` derivation used by every workload: pinned golden
/// values plus the independence/reproducibility contract.
#[test]
fn stream_rng_is_pinned_and_reproducible() {
    let mut s = stream_rng(7, "dram");
    let got: Vec<u64> = (0..4).map(|_| s.next_u64()).collect();
    assert_eq!(
        got,
        [
            0x32A2_509F_921C_AD4E,
            0xE40C_DC32_5659_8015,
            0x95BE_6A1C_BD28_F2B0,
            0x8B41_C0B1_D93D_DA62,
        ]
    );

    // Reproducible: a fresh generator for the same (seed, stream) replays.
    let mut again = stream_rng(7, "dram");
    assert_eq!(again.next_u64(), 0x32A2_509F_921C_AD4E);

    // Independent: other streams and other seeds diverge immediately.
    assert_ne!(stream_rng(7, "llc").next_u64(), got[0]);
    assert_ne!(stream_rng(8, "dram").next_u64(), got[0]);
}

/// Long-range independence: 64-sample prefixes of sibling streams share no
/// values at all (a collision would signal correlated seeding).
#[test]
fn sibling_streams_do_not_collide() {
    let names = ["core0", "core1", "dram", "llc", "memcached.arrivals"];
    let mut seen = std::collections::HashSet::new();
    for name in names {
        let mut rng = stream_rng(1, name);
        for _ in 0..64 {
            assert!(seen.insert(rng.next_u64()), "streams collided ({name})");
        }
    }
}

/// `gen_f64` derives from the pinned bit stream, so its golden values hold
/// too — this is what the Poisson inter-arrival gaps consume.
#[test]
fn gen_f64_is_pinned() {
    let mut s = stream_rng(7, "dram");
    let got: Vec<f64> = (0..3).map(|_| s.gen_f64()).collect();
    assert_eq!(
        got,
        [0.1977892293526674, 0.8908212302106673, 0.5849367447055192]
    );
}

/// FNV-1a stream-name hashing is part of the seeding contract.
#[test]
fn fnv1a_known_answers() {
    assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
    assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
}
