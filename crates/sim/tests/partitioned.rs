//! Cross-domain ordering properties of [`PartitionedSimulation`].
//!
//! The partitioned kernel's contract has two layers, and the suite tests
//! them separately:
//!
//! * **Worker-count determinism (exact):** the delivered order is a pure
//!   function of the schedule — the inline epoch driver and the threaded
//!   driver produce byte-identical per-component delivery logs.
//! * **Sequential equivalence (tie-robust):** against the sequential
//!   kernel the partitioned run delivers the same events at the same
//!   times to the same components. Equal-time ties *across different
//!   sender domains* may resolve in a different (still deterministic)
//!   order: composite seqs sort by `(domain, counter)` where the
//!   sequential kernel sorts by global post order. The oracle
//!   comparisons therefore canonicalize within each timestamp.

use pard_sim::check::cases;
use pard_sim::rng::Rng;
use pard_sim::{Component, ComponentId, Ctx, PartitionedSimulation, Simulation, Time};

/// Lookahead used throughout: every cross-domain send in these tests
/// travels exactly one or more multiples of this, so remote arrivals land
/// *exactly on* epoch horizons — the boundary the conservative protocol
/// must treat as "next epoch, not this one".
const LA: u64 = 64;

/// A node that logs every delivery and forwards a decremented payload to
/// a peer chosen by the payload itself. Behavior is a pure function of
/// the received event, so sequential and partitioned runs generate the
/// identical schedule.
struct Node {
    fanout: u32,
    log: Vec<(u64, u64)>, // (delivery time in units, payload)
}

impl Component<u64> for Node {
    fn name(&self) -> &str {
        "node"
    }
    fn handle(&mut self, ev: u64, ctx: &mut Ctx<'_, u64>) {
        self.log.push((ctx.now().units(), ev));
        if ev == 0 {
            return;
        }
        // Hop distance and delay derive from the payload; the delay is
        // always a whole number of lookaheads, so the send is legal for
        // any component-to-domain assignment.
        let dst = (ctx.self_id().raw() as u64 + ev) % self.fanout as u64;
        let hops = 1 + ev % 3;
        ctx.send(
            ComponentId::from_raw(dst as u32),
            Time::from_units(LA * hops),
            ev - 1,
        );
    }
    pard_sim::impl_as_any!();
}

/// Builds `n` nodes and posts the seed schedule into a fresh kernel.
fn build(n: u32, seeds: &[(u32, u64, u64)]) -> Simulation<u64> {
    let mut sim: Simulation<u64> = Simulation::new();
    for _ in 0..n {
        sim.add_component(Box::new(Node {
            fanout: n,
            log: Vec::new(),
        }));
    }
    for &(dst, at, payload) in seeds {
        sim.post(ComponentId::from_raw(dst), Time::from_units(at), payload);
    }
    sim
}

/// Per-component delivery logs after running `sim` sequentially.
fn run_sequential(n: u32, seeds: &[(u32, u64, u64)], until: Time) -> (Vec<Vec<(u64, u64)>>, u64) {
    let mut sim = build(n, seeds);
    sim.run_until(until);
    let logs = (0..n)
        .map(|c| sim.with_component::<Node, _, _>(ComponentId::from_raw(c), |x| x.log.clone()))
        .collect();
    (logs, sim.events_processed())
}

/// Per-component delivery logs after running the same schedule
/// partitioned by `domain_of`, with the worker count pinned.
fn run_partitioned(
    n: u32,
    seeds: &[(u32, u64, u64)],
    domain_of: Vec<u32>,
    workers: usize,
    until: Time,
) -> (Vec<Vec<(u64, u64)>>, u64) {
    let sim = build(n, seeds);
    let mut part = PartitionedSimulation::new(sim, domain_of, None, Time::from_units(LA));
    part.set_workers(Some(workers));
    part.run_until(until);
    let logs = (0..n)
        .map(|c| part.with_component::<Node, _, _>(ComponentId::from_raw(c), |x| x.log.clone()))
        .collect();
    (logs, part.events_processed())
}

/// Canonicalizes a delivery log for comparison against a kernel with a
/// different tie-ordering rule: entries at the same timestamp are sorted
/// by payload. Ordering *across* timestamps is untouched.
fn tie_sorted(log: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out = log.to_vec();
    out.sort_by_key(|&(t, p)| (t, p));
    // A stable per-timestamp sort must not have reordered distinct times.
    for w in out.windows(2) {
        assert!(w[0].0 <= w[1].0);
    }
    out
}

/// Every component shares the same seed timestamps — all exact multiples
/// of the lookahead — and every forward lands on an epoch horizon too, so
/// each epoch boundary carries a pile of equal-time ties from different
/// domains. The threaded and inline drivers must agree exactly; the
/// sequential oracle must agree up to tie order.
#[test]
fn equal_time_ties_at_epoch_boundaries() {
    let n = 4u32;
    let mut seeds = Vec::new();
    for c in 0..n {
        for k in 1..6u64 {
            seeds.push((c, k * LA, 3 + (c as u64 + k) % 4));
        }
    }
    let until = Time::from_units(10_000 * LA);
    let per_domain: Vec<u32> = (0..n).collect();

    let (seq_logs, seq_events) = run_sequential(n, &seeds, until);
    let (inline_logs, inline_events) = run_partitioned(n, &seeds, per_domain.clone(), 1, until);
    let (threaded_logs, threaded_events) = run_partitioned(n, &seeds, per_domain, 2, until);

    assert_eq!(inline_logs, threaded_logs, "inline vs threaded must be exact");
    assert_eq!(inline_events, threaded_events);
    assert_eq!(seq_events, inline_events);
    for c in 0..n as usize {
        assert!(!seq_logs[c].is_empty(), "test must exercise component {c}");
        assert_eq!(tie_sorted(&seq_logs[c]), tie_sorted(&inline_logs[c]));
    }
}

/// Two nodes in two domains ping-pong with a delay of exactly one
/// lookahead: every remote arrival lands precisely on the next epoch's
/// horizon, the tightest arrival the conservative protocol admits. The
/// alternating schedule has no ties, so all three runs must be exact.
#[test]
fn remote_arrivals_exactly_at_lookahead_horizon() {
    let n = 2u32;
    // Payload 40 with hops = 1 + ev % 3: pin payloads to ev % 3 == 0 so
    // every hop is exactly one lookahead.
    let seeds = [(0u32, LA, 39u64)];
    let until = Time::from_units(1_000_000);

    let (seq_logs, seq_events) = run_sequential(n, &seeds, until);
    let (inline_logs, inline_events) = run_partitioned(n, &seeds, vec![0, 1], 1, until);
    let (threaded_logs, threaded_events) = run_partitioned(n, &seeds, vec![0, 1], 2, until);

    assert_eq!(seq_logs, inline_logs, "tie-free schedule must match exactly");
    assert_eq!(inline_logs, threaded_logs);
    assert_eq!(seq_events, inline_events);
    assert_eq!(inline_events, threaded_events);
    // 40 deliveries happened, alternating between the two nodes.
    assert_eq!(seq_events, 40);
    let times: Vec<u64> = inline_logs[0]
        .iter()
        .chain(&inline_logs[1])
        .map(|&(t, _)| t)
        .collect();
    assert!(times.iter().all(|t| t % LA == 0), "every arrival sits on a horizon");
}

/// Randomized closure: a seeded schedule over a random node count is run
/// under a *random* component-to-domain assignment (including lopsided
/// maps and domains holding zero or all components) and must reproduce
/// the sequential kernel's deliveries — exactly when inline and threaded
/// are compared, tie-canonically against the oracle.
#[test]
fn seeded_random_assignment_matches_sequential_oracle() {
    cases("partitioned.random_assignment", 48, |rng| {
        let n = rng.gen_range(2u32..9);
        let domains = rng.gen_range(1u32..5);
        let domain_of: Vec<u32> = (0..n).map(|_| rng.gen_range(0..domains)).collect();
        let seeds: Vec<(u32, u64, u64)> = (0..rng.gen_range(1usize..12))
            .map(|_| {
                (
                    rng.gen_range(0..n),
                    rng.gen_range(1u64..40) * LA,
                    rng.gen_range(0u64..12),
                )
            })
            .collect();
        let until = Time::from_units(100_000 * LA);
        let workers = rng.gen_range(1usize..4);

        let (seq_logs, seq_events) = run_sequential(n, &seeds, until);
        let (part_logs, part_events) =
            run_partitioned(n, &seeds, domain_of.clone(), 1, until);
        let (thr_logs, thr_events) = run_partitioned(n, &seeds, domain_of, workers, until);

        assert_eq!(part_logs, thr_logs, "worker count must not change delivery");
        assert_eq!(part_events, thr_events);
        assert_eq!(seq_events, part_events);
        for c in 0..n as usize {
            assert_eq!(tie_sorted(&seq_logs[c]), tie_sorted(&part_logs[c]));
        }
    });
}
