//! Randomized invariant tests of the kernel's core data structures,
//! driven by the first-party seeded [`check`](pard_sim::check) harness.

use pard_sim::check::{cases, vec_of};
use pard_sim::rng::Rng;
use pard_sim::stats::{Histogram, LatencySample};
use pard_sim::{ComponentId, EventQueue, Time};

/// The event queue delivers in (time, insertion-order): popping yields
/// a sequence sorted by time, stable for equal timestamps.
#[test]
fn event_queue_pops_sorted_and_stable() {
    cases("event_queue_pops_sorted_and_stable", 256, |rng| {
        let times = vec_of(rng, 1..200, |r| r.gen_range(0u64..1000));
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.push(Time::from_ns(t), ComponentId::from_raw(0), seq);
        }
        let mut last: Option<(Time, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, lseq)) = last {
                assert!(ev.time >= lt);
                if ev.time == lt {
                    assert!(ev.event > lseq, "equal times must pop in insertion order");
                }
            }
            last = Some((ev.time, ev.event));
        }
    });
}

/// Nearest-rank percentiles are monotone in p and bounded by min/max.
#[test]
fn percentiles_are_monotone() {
    cases("percentiles_are_monotone", 256, |rng| {
        let values = vec_of(rng, 1..300, |r| r.gen_range(0u64..1_000_000));
        let mut s = LatencySample::new();
        for &v in &values {
            s.record(Time::from_units(v));
        }
        let ps = [0.0, 0.25, 0.5, 0.75, 0.95, 1.0];
        let qs: Vec<Time> = ps.iter().map(|&p| s.percentile(p)).collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1]);
        }
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        assert_eq!(qs[0], Time::from_units(min));
        assert_eq!(*qs.last().unwrap(), Time::from_units(max));
    });
}

/// A latency sample's CDF ends at exactly 1.0 and is non-decreasing in
/// both coordinates.
#[test]
fn cdf_is_a_distribution() {
    cases("cdf_is_a_distribution", 256, |rng| {
        let values = vec_of(rng, 1..200, |r| r.gen_range(0u64..10_000));
        let mut s = LatencySample::new();
        for &v in &values {
            s.record(Time::from_units(v));
        }
        let cdf = s.cdf();
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1 + 1e-12);
        }
    });
}

/// Histogram counts are conserved: total = sum of bins + overflow,
/// and mean matches the exact mean.
#[test]
fn histogram_conserves_mass() {
    cases("histogram_conserves_mass", 256, |rng| {
        let values = vec_of(rng, 1..300, |r| r.gen_range(0u64..500));
        let mut h = Histogram::new(7, 11);
        for &v in &values {
            h.record(v);
        }
        let binned: u64 = (0..h.nbins()).map(|i| h.bin_count(i)).sum::<u64>() + h.overflow();
        assert_eq!(binned, values.len() as u64);
        let exact = values.iter().sum::<u64>() as f64 / values.len() as f64;
        assert!((h.mean() - exact).abs() < 1e-9);
    });
}

/// Time alignment: align_up produces a multiple of the quantum, is
/// >= the input, and is idempotent.
#[test]
fn align_up_properties() {
    cases("align_up_properties", 256, |rng| {
        let t = rng.gen_range(0u64..u64::from(u32::MAX));
        let q = rng.gen_range(1u64..10_000);
        let time = Time::from_units(t);
        let quantum = Time::from_units(q);
        let aligned = time.align_up(quantum);
        assert!(aligned >= time);
        assert_eq!(aligned.units() % q, 0);
        assert_eq!(aligned.align_up(quantum), aligned);
        assert!(aligned.units() - t < q);
    });
}
