//! Cross-ordering property tests for the ladder [`EventQueue`]: under
//! randomized push/pop interleavings its pop sequence must match a
//! reference sort by `(time, seq)` exactly — including equal-time ties
//! whose bucket spans straddle the queue's internal tier boundaries.

use pard_sim::check::{self, cases};
use pard_sim::rng::Rng;
use pard_sim::{ComponentId, EventQueue, Time};

fn dst() -> ComponentId {
    ComponentId::from_raw(0)
}

/// Drives `q` and a sorted reference with the same operations; each pop
/// must return the reference's front.
struct Cross {
    q: EventQueue<u64>,
    reference: Vec<(u64, u64)>, // (time units, seq), kept sorted
    seq: u64,
}

impl Cross {
    fn new() -> Self {
        Cross {
            q: EventQueue::new(),
            reference: Vec::new(),
            seq: 0,
        }
    }

    fn push(&mut self, units: u64) {
        self.q.push(Time::from_units(units), dst(), self.seq);
        let at = self
            .reference
            .partition_point(|&e| e < (units, self.seq));
        self.reference.insert(at, (units, self.seq));
        self.seq += 1;
    }

    fn pop_and_check(&mut self) {
        let expect = self.reference.remove(0);
        let got = self.q.pop().expect("queue and reference agree on len");
        assert_eq!((got.time.units(), got.seq), expect);
        assert_eq!(got.event, expect.1, "payload follows its (time, seq)");
    }

    fn drain(&mut self) {
        while !self.reference.is_empty() {
            self.pop_and_check();
        }
        assert!(self.q.pop().is_none());
        assert!(self.q.is_empty());
    }
}

#[test]
fn random_interleavings_match_reference_sort() {
    cases("event_order.random_interleavings", 128, |rng| {
        let mut x = Cross::new();
        let mut now = 0u64;
        let ops = rng.gen_range(10usize..400);
        for _ in 0..ops {
            if x.reference.is_empty() || rng.gen_bool(0.6) {
                // Mix delay scales so events land in the active bucket,
                // across several ring buckets, and in the overflow tier.
                let delay = match rng.gen_range(0u32..4) {
                    0 => rng.gen_range(0u64..8),         // same bucket
                    1 => rng.gen_range(0u64..512),       // nearby buckets
                    2 => rng.gen_range(0u64..6_000),     // across the ring
                    _ => rng.gen_range(0u64..500_000),   // overflow tier
                };
                x.push(now + delay);
            } else {
                x.pop_and_check();
                now = now.max(x.reference.first().map_or(now, |&(t, _)| t));
            }
        }
        x.drain();
    });
}

#[test]
fn equal_time_ties_across_bucket_boundaries_pop_in_seq_order() {
    cases("event_order.tie_storm", 64, |rng| {
        let mut x = Cross::new();
        // A handful of distinct timestamps, deliberately clustered near
        // multiples of the 64-unit bucket width so ties sit exactly on
        // tier boundaries, each pushed many times interleaved.
        let base = rng.gen_range(0u64..10_000);
        let times: Vec<u64> = (0..rng.gen_range(2usize..6))
            .map(|_| base + rng.gen_range(0u64..40) * 64)
            .collect();
        for round in 0..rng.gen_range(4u32..30) {
            let t = times[rng.gen_range(0..times.len())];
            x.push(t);
            if round % 3 == 2 {
                x.pop_and_check();
            }
        }
        x.drain();
    });
}

#[test]
fn pops_between_refills_preserve_order_after_idle_gaps() {
    // Drain-to-empty then push far ahead: the queue rebases its ladder;
    // ordering must survive arbitrarily many such idle gaps.
    cases("event_order.idle_gaps", 64, |rng| {
        let mut x = Cross::new();
        let mut now = 0u64;
        for _ in 0..rng.gen_range(2u32..10) {
            let burst = check::vec_of(rng, 1..20, |r| now + r.gen_range(0u64..300));
            for t in burst {
                x.push(t);
            }
            x.drain();
            now += rng.gen_range(1_000u64..10_000_000);
        }
    });
}
