//! Seeded randomized tests of the cache structures' invariants.

use pard_cache::{CacheGeometry, PlruTree, TagArray};
use pard_icn::{DsId, LAddr};
use pard_sim::check::{cases, vec_of, DEFAULT_CASES};
use pard_sim::rng::Rng;

fn small_geom() -> CacheGeometry {
    CacheGeometry::new(8 * 4 * 64, 4, 64) // 8 sets x 4 ways
}

/// The PLRU victim always lies within the allowed mask (or anywhere
/// for an empty mask), for any tree state.
#[test]
fn plru_victim_respects_mask() {
    cases("cache.plru_victim_respects_mask", DEFAULT_CASES, |rng| {
        let touches = vec_of(rng, 0..64, |r| r.gen_range(0u32..16));
        let mask = rng.gen_range(0u64..=0xFFFF);
        let mut p = PlruTree::new(16);
        for &w in &touches {
            p.touch(w);
        }
        let v = p.victim(mask);
        assert!(v < 16);
        if mask & 0xFFFF != 0 {
            assert!(mask & (1 << v) != 0, "victim {v} outside mask {mask:#x}");
        }
    });
}

/// Per-DS-id occupancy counters always equal the number of resident
/// lines, across any interleaving of fills and invalidations.
#[test]
fn occupancy_counters_stay_exact() {
    cases("cache.occupancy_counters_stay_exact", DEFAULT_CASES, |rng| {
        let ops = vec_of(rng, 1..200, |r| {
            (
                r.gen_range(0u16..4),
                r.gen_range(0u64..64),
                r.gen_bool(0.5),
            )
        });
        let mut a = TagArray::new(small_geom(), 4);
        let mut resident: std::collections::HashSet<(u16, u64)> = Default::default();
        for &(ds_raw, line, invalidate) in &ops {
            let ds = DsId::new(ds_raw);
            let addr = LAddr::new(line * 64);
            if invalidate {
                a.invalidate_ds(ds);
                resident.retain(|&(d, _)| d != ds_raw);
            } else if a.probe(ds, addr).is_none() {
                let out = a.fill(ds, addr, u64::MAX, false);
                resident.insert((ds_raw, addr.line_base().raw()));
                if let Some(v) = out.evicted {
                    resident.remove(&(v.owner.raw(), v.addr.raw()));
                }
            }
            // Invariant: counters match the ground truth set.
            for d in 0..4u16 {
                let expected = resident.iter().filter(|&&(dd, _)| dd == d).count() as u64;
                assert_eq!(a.occupancy_lines(DsId::new(d)), expected);
            }
        }
        let total: u64 = (0..4u16).map(|d| a.occupancy_lines(DsId::new(d))).sum();
        assert_eq!(a.total_valid_lines(), total);
        assert!(total <= small_geom().lines());
    });
}

/// A hit is possible only for the (ds, address) pairs actually filled:
/// no LDom ever observes another LDom's line.
#[test]
fn no_cross_ldom_hits() {
    cases("cache.no_cross_ldom_hits", DEFAULT_CASES, |rng| {
        let fills = vec_of(rng, 1..64, |r| (r.gen_range(0u16..4), r.gen_range(0u64..32)));
        let probes = vec_of(rng, 1..64, |r| (r.gen_range(0u16..4), r.gen_range(0u64..32)));
        let mut a = TagArray::new(small_geom(), 4);
        let mut filled: std::collections::HashSet<(u16, u64)> = Default::default();
        for &(ds, line) in &fills {
            let addr = LAddr::new(line * 64);
            if a.probe(DsId::new(ds), addr).is_none() {
                let out = a.fill(DsId::new(ds), addr, u64::MAX, false);
                filled.insert((ds, addr.raw()));
                if let Some(v) = out.evicted {
                    filled.remove(&(v.owner.raw(), v.addr.raw()));
                }
            }
        }
        for &(ds, line) in &probes {
            let addr = LAddr::new(line * 64);
            let hit = a.probe(DsId::new(ds), addr).is_some();
            let legal = filled.contains(&(ds, addr.raw()));
            assert_eq!(hit, legal, "probe (ds{ds}, {addr:?})");
        }
    });
}

/// Fills under a mask place the block in an allowed way.
#[test]
fn fills_land_inside_the_partition() {
    cases("cache.fills_land_inside_the_partition", DEFAULT_CASES, |rng| {
        let lines = vec_of(rng, 1..64, |r| r.gen_range(0u64..64));
        let mask = rng.gen_range(1u64..=0xF);
        let mut a = TagArray::new(small_geom(), 4);
        for &line in &lines {
            let addr = LAddr::new(line * 64);
            if a.probe(DsId::new(1), addr).is_none() {
                let out = a.fill(DsId::new(1), addr, mask, false);
                assert!(mask & (1 << out.way) != 0);
            }
        }
    });
}

/// Geometry round trip: any address reconstructs to its line base.
#[test]
fn geometry_round_trips() {
    cases("cache.geometry_round_trips", DEFAULT_CASES, |rng| {
        let raw = rng.gen_range(0u64..(1 << 40));
        let g = CacheGeometry::new(4 << 20, 16, 64);
        let a = LAddr::new(raw);
        assert_eq!(g.addr_of(g.tag_of(a), g.set_of(a)), a.line_base());
    });
}
