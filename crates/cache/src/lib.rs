//! # pard-cache — the cache hierarchy
//!
//! Implements the paper's Figure 4: a shared last-level cache whose tag
//! array stores an **owner DS-id** per block, with a **way-partitioning**
//! mechanism driven by the LLC control plane's parameter table and a
//! pseudo-LRU replacement policy that honours per-DS-id way masks.
//!
//! Key fidelity points, each mapped to the paper:
//!
//! * **Hit definition** — a request hits if and only if its address matches
//!   the cache tag *and* its DS-id matches the block's owner DS-id
//!   (footnote 4): LDoms share the numeric address space but never each
//!   other's data.
//! * **Writeback tagging** (§4.1) — when a dirty block is evicted, the
//!   writeback packet is tagged with the block's *owner* DS-id, not the
//!   DS-id of the request that triggered the eviction. [`TagArray::fill`]
//!   returns the evicted owner so the LLC can do exactly this.
//! * **No extra latency** (§7.2) — control-plane work (parameter lookup,
//!   statistics updates, trigger checks) happens off the critical path; the
//!   simulated hit latency is the same with and without the control plane,
//!   which the `llc_control_plane_adds_no_latency` test asserts.
//!
//! The crate also provides the private per-core [`L1Cache`] model.
//!
//! # Paper mapping
//!
//! | paper | here |
//! |---|---|
//! | Fig. 4 (tagged LLC datapath) | [`TagArray`] owner DS-ids + [`Llc`] |
//! | §3.2 way-partitioning | per-DS way masks from the parameter table |
//! | footnote 4 (tag ∧ DS-id hit rule) | [`TagArray`] lookup |
//! | §3.3 cache control plane (CACHE_CP, cpa0) | `cpdef` column/trigger layout |
//! | Fig. 9 miss-rate statistics | per-DS statistics columns |
//! | §7.2 "no extra cycles" | control plane off the hit path (tested) |

#![warn(missing_docs)]

mod array;
mod cpdef;
mod geometry;
mod l1;
mod llc;
mod mshr;
mod plru;

pub use array::{FillOutcome, TagArray, Victim};
pub use cpdef::{
    llc_control_plane, LLC_PARAM_COLUMNS, LLC_STATS_COLUMNS, STAT_CAPACITY, STAT_HIT_CNT,
    STAT_MISS_CNT, STAT_MISS_RATE,
};
pub use geometry::CacheGeometry;
pub use l1::{L1Cache, L1Outcome};
pub use llc::{Llc, LlcConfig};
pub use mshr::{mshr_waiter, Mshr, MshrKey, MshrOutcome, Waiter};
pub use plru::PlruTree;
