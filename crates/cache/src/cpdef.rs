//! The LLC control-plane definition (tables per paper Table 3 / Fig. 6).

use pard_cp::{ColumnDef, ControlPlane, CpType, DsTable, StatKey};

/// Parameter-table columns of the LLC control plane.
///
/// * `waymask` — way-partitioning mask bits for the DS-id (Table 3). The
///   default allows all 16 ways, i.e. unpartitioned sharing.
pub const LLC_PARAM_COLUMNS: &[&str] = &["waymask"];

/// Statistics-table columns of the LLC control plane.
///
/// * `miss_rate` — percent, over the last statistics window (Fig. 6),
/// * `capacity` — bytes currently occupied by the DS-id (Fig. 6; computed
///   by counting the DS-id in the tag array, footnote 6),
/// * `hit_cnt` / `miss_cnt` — cumulative counters (Fig. 2).
pub const LLC_STATS_COLUMNS: &[&str] = &["miss_rate", "capacity", "hit_cnt", "miss_cnt"];

/// Key of `miss_rate` in the statistics table (trigger conditions use the
/// underlying [`StatKey::offset`]).
pub const STAT_MISS_RATE: StatKey = StatKey::at(0);
/// Key of `capacity`.
pub const STAT_CAPACITY: StatKey = StatKey::at(1);
/// Key of `hit_cnt`.
pub const STAT_HIT_CNT: StatKey = StatKey::at(2);
/// Key of `miss_cnt`.
pub const STAT_MISS_CNT: StatKey = StatKey::at(3);

/// Builds the LLC control plane with `max_ds` table rows and
/// `trigger_slots` trigger entries.
///
/// # Example
///
/// ```
/// use pard_icn::DsId;
/// let cp = pard_cache::llc_control_plane(256, 64);
/// assert_eq!(cp.ident(), "CACHE_CP");
/// // Default waymask shares all ways.
/// assert_eq!(cp.param(DsId::new(3), "waymask").unwrap(), 0xFFFF);
/// ```
pub fn llc_control_plane(max_ds: usize, trigger_slots: usize) -> ControlPlane {
    let params = DsTable::new(
        "parameter",
        vec![ColumnDef::with_default("waymask", 0xFFFF)],
        max_ds,
    );
    let stats = DsTable::new(
        "statistics",
        LLC_STATS_COLUMNS
            .iter()
            .map(|name| ColumnDef::new(name))
            .collect(),
        max_ds,
    );
    ControlPlane::new("CACHE_CP", CpType::Cache, params, stats, trigger_slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_icn::DsId;

    #[test]
    fn stats_schema_matches_offsets() {
        let cp = llc_control_plane(8, 4);
        let stats = cp.stats();
        assert_eq!(stats.key("miss_rate").unwrap(), STAT_MISS_RATE);
        assert_eq!(stats.key("capacity").unwrap(), STAT_CAPACITY);
        assert_eq!(stats.key("hit_cnt").unwrap(), STAT_HIT_CNT);
        assert_eq!(stats.key("miss_cnt").unwrap(), STAT_MISS_CNT);
    }

    #[test]
    fn default_mask_is_unpartitioned() {
        let cp = llc_control_plane(8, 4);
        for ds in 0..8u16 {
            assert_eq!(cp.param(DsId::new(ds), "waymask").unwrap(), 0xFFFF);
        }
    }
}
