//! Cache geometry and address decomposition.

use pard_icn::LAddr;

/// Geometry of a set-associative cache.
///
/// # Example
///
/// ```
/// use pard_cache::CacheGeometry;
/// // The Table 2 LLC: 4 MB, 16-way, 64 B lines.
/// let g = CacheGeometry::new(4 * 1024 * 1024, 16, 64);
/// assert_eq!(g.sets(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    size_bytes: u64,
    ways: u32,
    line_bytes: u32,
    sets: u64,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `ways`, `line_bytes`, and the derived set count are
    /// powers of two and the size divides evenly.
    pub fn new(size_bytes: u64, ways: u32, line_bytes: u32) -> Self {
        assert!(ways.is_power_of_two(), "ways must be a power of two");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert_eq!(
            size_bytes % u64::from(ways * line_bytes),
            0,
            "size must be a whole number of sets"
        );
        let sets = size_bytes / u64::from(ways * line_bytes);
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two (got {sets})"
        );
        CacheGeometry {
            size_bytes,
            ways,
            line_bytes,
            sets,
        }
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.sets * u64::from(self.ways)
    }

    /// Set index for an address.
    #[inline]
    pub fn set_of(&self, addr: LAddr) -> u64 {
        (addr.raw() / u64::from(self.line_bytes)) & (self.sets - 1)
    }

    /// Tag for an address (the line number above the index bits).
    #[inline]
    pub fn tag_of(&self, addr: LAddr) -> u64 {
        (addr.raw() / u64::from(self.line_bytes)) / self.sets
    }

    /// Reconstructs a line-aligned address from `(tag, set)`.
    #[inline]
    pub fn addr_of(&self, tag: u64, set: u64) -> LAddr {
        LAddr::new((tag * self.sets + set) * u64::from(self.line_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_llc_geometry() {
        let g = CacheGeometry::new(4 * 1024 * 1024, 16, 64);
        assert_eq!(g.sets(), 4096);
        assert_eq!(g.lines(), 65536);
        assert_eq!(g.ways(), 16);
        assert_eq!(g.line_bytes(), 64);
        assert_eq!(g.size_bytes(), 4 * 1024 * 1024);
    }

    #[test]
    fn tag_set_round_trip() {
        let g = CacheGeometry::new(64 * 1024, 2, 64);
        for raw in [0u64, 64, 4096, 123_456_704, 0xFFFF_FFC0] {
            let a = LAddr::new(raw);
            let rebuilt = g.addr_of(g.tag_of(a), g.set_of(a));
            assert_eq!(rebuilt, a.line_base());
        }
    }

    #[test]
    fn adjacent_lines_map_to_adjacent_sets() {
        let g = CacheGeometry::new(64 * 1024, 2, 64);
        let a = LAddr::new(0);
        let b = LAddr::new(64);
        assert_eq!(g.set_of(b), g.set_of(a) + 1);
        assert_eq!(g.tag_of(a), g.tag_of(b));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_ways_panics() {
        let _ = CacheGeometry::new(3 * 64 * 10, 3, 64);
    }
}
