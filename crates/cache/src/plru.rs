//! Tree pseudo-LRU with way-mask support.
//!
//! The paper's LLC control plane supplies per-DS-id **way-partitioning mask
//! bits** to the replacement logic (Fig. 4 step 2): the pseudo-LRU tree
//! picks a victim *among the ways allowed by the requesting DS-id's mask*,
//! so each LDom only ever evicts within its own partition while hits can be
//! served from any way.

/// A tree pseudo-LRU state machine for one cache set.
///
/// Supports up to 64 ways (power of two). Internal nodes are stored in heap
/// order in a bit vector: node 1 is the root, node `i` has children `2i`
/// and `2i+1`; leaves `ways..2*ways` map to way `leaf - ways`. A node bit
/// of 0 means "the LRU side is the left subtree".
///
/// # Example
///
/// ```
/// use pard_cache::PlruTree;
/// let mut p = PlruTree::new(4);
/// // Touch ways 0..3 in order; way 0 becomes least recently used.
/// for w in 0..4 { p.touch(w); }
/// assert_eq!(p.victim(0b1111), 0);
/// // Restrict the victim to ways {2,3}.
/// assert!(p.victim(0b1100) >= 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlruTree {
    bits: u64,
    ways: u32,
}

impl PlruTree {
    /// Creates a tree for `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` is a power of two in `1..=64`.
    pub fn new(ways: u32) -> Self {
        assert!(
            ways.is_power_of_two() && (1..=64).contains(&ways),
            "ways must be a power of two in 1..=64"
        );
        PlruTree { bits: 0, ways }
    }

    /// Number of ways this tree covers.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    #[inline]
    fn bit(&self, node: u32) -> bool {
        (self.bits >> node) & 1 == 1
    }

    #[inline]
    fn set_bit(&mut self, node: u32, v: bool) {
        if v {
            self.bits |= 1 << node;
        } else {
            self.bits &= !(1 << node);
        }
    }

    /// Records an access to `way`, pointing every node on its root path
    /// away from it.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn touch(&mut self, way: u32) {
        assert!(way < self.ways, "way {way} out of range");
        let mut node = self.ways + way; // leaf index
        while node > 1 {
            let parent = node / 2;
            let came_from_left = node.is_multiple_of(2);
            // Point the parent's LRU hint at the *other* child
            // (bit = true means "victim search goes right").
            self.set_bit(parent, came_from_left);
            node = parent;
        }
    }

    /// Selects a victim way among those allowed by `mask` (bit `w` set ⇒
    /// way `w` allowed), following the PLRU hints where possible.
    ///
    /// An all-zero mask is treated as all-ways-allowed: a misprogrammed
    /// parameter table must not deadlock the cache (the hardware would do
    /// the same by OR-ing a fallback).
    pub fn victim(&self, mask: u64) -> u32 {
        let full = if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        };
        let mask = {
            let m = mask & full;
            if m == 0 {
                full
            } else {
                m
            }
        };
        // Descend from the root; at each node prefer the LRU-hinted child,
        // falling back to the other child when the hinted subtree contains
        // no allowed way.
        let mut node = 1u32;
        let mut lo = 0u32;
        let mut hi = self.ways; // leaf range [lo, hi)
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let left_mask = range_mask(lo, mid) & mask;
            let right_mask = range_mask(mid, hi) & mask;
            let go_right = if left_mask == 0 {
                true
            } else if right_mask == 0 {
                false
            } else {
                self.bit(node)
            };
            if go_right {
                node = node * 2 + 1;
                lo = mid;
            } else {
                node *= 2;
                // hi stays relative: new range [lo, mid)
                hi = mid;
            }
        }
        lo
    }
}

#[inline]
fn range_mask(lo: u32, hi: u32) -> u64 {
    let width = hi - lo;
    let ones = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    ones << lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_respects_mask() {
        let mut p = PlruTree::new(16);
        for w in 0..16 {
            p.touch(w);
        }
        for mask in [0x0001u64, 0x8000, 0x00F0, 0xFF00, 0x00FF] {
            let v = p.victim(mask);
            assert!(mask & (1 << v) != 0, "victim {v} outside mask {mask:#x}");
        }
    }

    #[test]
    fn untouched_subtree_is_preferred_victim() {
        // Tree PLRU guarantees the victim lands in a subtree that has not
        // been touched since the other side was.
        let mut p = PlruTree::new(8);
        for w in [4, 5, 6, 7] {
            p.touch(w);
        }
        assert!(p.victim(0xFF) < 4, "victim must come from the cold half");

        let mut p = PlruTree::new(8);
        for w in [0, 1, 2, 3] {
            p.touch(w);
        }
        assert!(p.victim(0xFF) >= 4, "victim must come from the cold half");
    }

    #[test]
    fn repeated_touch_cycles_through_all_ways() {
        // Evict-then-touch must visit every way before repeating: PLRU is
        // a permutation-ish policy under this access pattern.
        let mut p = PlruTree::new(8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            let v = p.victim(0xFF);
            assert!(seen.insert(v), "way {v} evicted twice in one round");
            p.touch(v);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn masked_round_robin_stays_in_partition() {
        let mut p = PlruTree::new(16);
        let mask = 0x00FFu64; // the paper's "rightmost 8 ways"
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            let v = p.victim(mask);
            assert!(v < 8);
            seen.insert(v);
            p.touch(v);
        }
        assert_eq!(seen.len(), 8, "partition uses all of its ways");
    }

    #[test]
    fn zero_mask_falls_back_to_all_ways() {
        let p = PlruTree::new(4);
        let v = p.victim(0);
        assert!(v < 4);
    }

    #[test]
    fn single_way_cache() {
        let mut p = PlruTree::new(1);
        p.touch(0);
        assert_eq!(p.victim(1), 0);
    }

    #[test]
    fn sixty_four_ways() {
        let mut p = PlruTree::new(64);
        for w in 0..64 {
            p.touch(w);
        }
        let v = p.victim(u64::MAX);
        assert!(v < 64);
        assert_eq!(p.victim(1 << 63), 63);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn touch_out_of_range_panics() {
        let mut p = PlruTree::new(4);
        p.touch(4);
    }
}
