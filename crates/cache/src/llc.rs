//! The shared last-level cache component (Fig. 4).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pard_cp::{shared, CpHandle, StatsHandle};
use pard_icn::{cpu_cycles, DsId, MemKind, MemPacket, MemResp, PacketIdGen, PardEvent, TickKind};
use pard_sim::trace::{self, TraceCat, TraceVal};
use pard_sim::{audit, Component, ComponentId, Ctx, Time};

use crate::array::TagArray;
use crate::cpdef::{
    llc_control_plane, STAT_CAPACITY, STAT_HIT_CNT, STAT_MISS_CNT, STAT_MISS_RATE,
};
use crate::geometry::CacheGeometry;
use crate::mshr::{mshr_waiter, Mshr, MshrKey, MshrOutcome};

/// Configuration of the [`Llc`] component.
#[derive(Debug, Clone)]
pub struct LlcConfig {
    /// Cache geometry (Table 2 default: 4 MB, 16-way, 64 B lines).
    pub geometry: CacheGeometry,
    /// Hit latency (Table 2: 20 cycles).
    pub hit_latency: Time,
    /// Extra latency from fill to waiter response.
    pub fill_latency: Time,
    /// Statistics-window length for miss-rate computation and trigger
    /// evaluation.
    pub window: Time,
    /// Number of DS-id rows in the control-plane tables.
    pub max_ds: usize,
    /// Trigger-table slots.
    pub trigger_slots: usize,
    /// MSHR entries.
    pub mshr_entries: usize,
    /// Minimum accesses in a statistics window for the `miss_rate` column
    /// to be refreshed; windows with fewer hold the previous value
    /// (hardware would gate the divider the same way to avoid noise).
    pub window_min_accesses: u64,
    /// ABLATION ONLY: tag writebacks with the *requesting* DS-id instead
    /// of the evicted block's owner DS-id. This is the incorrect design
    /// §4.1 warns against — downstream control planes then mis-attribute
    /// the writeback to the wrong LDom and apply the wrong rules. Kept as
    /// a switch so the effect is demonstrable.
    pub naive_writeback_tagging: bool,
}

impl Default for LlcConfig {
    fn default() -> Self {
        LlcConfig {
            geometry: CacheGeometry::new(4 * 1024 * 1024, 16, 64),
            hit_latency: cpu_cycles(20),
            fill_latency: cpu_cycles(4),
            window: Time::from_us(50),
            max_ds: 256,
            trigger_slots: 64,
            mshr_entries: 256,
            window_min_accesses: 32,
            naive_writeback_tagging: false,
        }
    }
}

/// The shared LLC with its embedded control plane.
///
/// Data-path behaviour (Fig. 4):
///
/// 1. On request arrival the requester's DS-id selects the way mask from
///    the parameter table (cached against the generation counter — a
///    pipeline-hidden read in hardware).
/// 2. A hit requires both tag and owner-DS-id match; hits respond after
///    the pipelined hit latency.
/// 3. Misses allocate an MSHR entry keyed by `(DS-id, line)` and fetch
///    from the memory controller; the DS-id travels with the fetch.
/// 4. Fills install the requesting DS-id as the block's owner; a displaced
///    dirty block is written back **tagged with its owner DS-id** (§4.1).
/// 5. Statistics/trigger work happens at window boundaries, off the
///    critical path (§7.2: the control plane adds no extra cycles).
pub struct Llc {
    cfg: LlcConfig,
    array: TagArray,
    mshr: Mshr,
    cp: CpHandle,
    /// Lock-free recording path into the control plane's stats cells; the
    /// `cp` mutex is only taken at window boundaries (trigger evaluation)
    /// and parameter-generation refreshes.
    stats: StatsHandle,
    gen_watch: Arc<AtomicU64>,
    cached_gen: u64,
    waymasks: Vec<u64>,
    mem_ctrl: ComponentId,
    ids: PacketIdGen,
    outstanding: HashMap<u64, MshrKey>,
    win_hits: Vec<u64>,
    win_misses: Vec<u64>,
    active_ds: Vec<bool>,
    window_armed: bool,
    /// Total responses sent (observability for tests).
    responses_sent: u64,
}

impl Llc {
    /// Creates an LLC and returns it with a handle to its control plane.
    pub fn new(cfg: LlcConfig) -> (Self, CpHandle) {
        let cp = shared(llc_control_plane(cfg.max_ds, cfg.trigger_slots));
        let (gen_watch, stats) = {
            let guard = cp.lock();
            (guard.generation_watch(), guard.stats_handle())
        };
        let llc = Llc {
            stats,
            array: TagArray::new(cfg.geometry, cfg.max_ds),
            mshr: Mshr::new(cfg.mshr_entries),
            gen_watch,
            cached_gen: u64::MAX,
            waymasks: vec![u64::MAX; cfg.max_ds],
            mem_ctrl: ComponentId::UNWIRED,
            ids: PacketIdGen::new(),
            outstanding: HashMap::new(),
            win_hits: vec![0; cfg.max_ds],
            win_misses: vec![0; cfg.max_ds],
            active_ds: vec![false; cfg.max_ds],
            window_armed: false,
            responses_sent: 0,
            cp: cp.clone(),
            cfg,
        };
        (llc, cp)
    }

    /// Wires the downstream memory controller.
    pub fn set_mem_ctrl(&mut self, id: ComponentId) {
        self.mem_ctrl = id;
    }

    /// The control-plane handle (also returned by [`Llc::new`]).
    pub fn control_plane(&self) -> &CpHandle {
        &self.cp
    }

    /// Lines currently owned by `ds` (reads the live tag array).
    pub fn occupancy_bytes(&self, ds: DsId) -> u64 {
        self.array.occupancy_bytes(ds)
    }

    /// Total responses sent to requesters so far.
    pub fn responses_sent(&self) -> u64 {
        self.responses_sent
    }

    /// Cumulative `(hits, misses)` for `ds`, read from the stats cells.
    pub fn counts(&self, ds: DsId) -> (u64, u64) {
        (
            self.stats.get(ds, STAT_HIT_CNT).unwrap_or(0),
            self.stats.get(ds, STAT_MISS_CNT).unwrap_or(0),
        )
    }

    /// Invalidates every line owned by `ds` (LDom teardown). Dirty lines
    /// are dropped rather than written back: the domain's memory is being
    /// reclaimed, so the data has no owner left. Returns the number of
    /// dirty lines discarded.
    pub fn flush_ds(&mut self, ds: DsId) -> u64 {
        self.array.invalidate_ds(ds).len() as u64
    }

    fn refresh_params(&mut self) {
        let gen = self.gen_watch.load(Ordering::Acquire);
        if gen == self.cached_gen {
            return;
        }
        let cp = self.cp.lock();
        for ds in 0..self.cfg.max_ds {
            self.waymasks[ds] = cp
                .param(DsId::new(ds as u16), "waymask")
                .expect("LLC parameter table always has a waymask column sized to max_ds");
        }
        self.cached_gen = gen;
    }

    fn mask_for(&self, ds: DsId) -> u64 {
        self.waymasks.get(ds.index()).copied().unwrap_or(u64::MAX)
    }

    fn arm_window(&mut self, ctx: &mut Ctx<'_, PardEvent>) {
        if !self.window_armed {
            self.window_armed = true;
            let window = self.cfg.window;
            ctx.send(ctx.self_id(), window, PardEvent::Tick(TickKind::CpWindow));
        }
    }

    fn on_mem_req(&mut self, pkt: MemPacket, ctx: &mut Ctx<'_, PardEvent>) {
        self.refresh_params();
        let ds = pkt.ds;
        if audit::enabled() {
            // The LLC is the terminal consumer of the core → crossbar
            // conservation domain.
            audit::packet_retire(
                "xbar",
                pkt.reply_to.raw(),
                pkt.id.0,
                ds.raw(),
                ctx.now(),
                "llc",
            );
        }
        if ds.index() < self.cfg.max_ds {
            self.active_ds[ds.index()] = true;
        }

        match pkt.kind {
            MemKind::Writeback => {
                // L1 dirty eviction: absorb if present, else forward to
                // DRAM without allocating (no-allocate for writebacks).
                if !self.array.mark_dirty(ds, pkt.addr) {
                    let fwd = MemPacket {
                        id: self.ids.next_id(),
                        reply_to: ctx.self_id(),
                        issued_at: ctx.now(),
                        ..pkt
                    };
                    if audit::enabled() {
                        audit::packet_inject(
                            "mem",
                            fwd.reply_to.raw(),
                            fwd.id.0,
                            fwd.ds.raw(),
                            ctx.now(),
                        );
                    }
                    let hit_latency = self.cfg.hit_latency;
                    ctx.send(self.mem_ctrl, hit_latency, PardEvent::MemReq(fwd));
                }
            }
            MemKind::Read | MemKind::Write => {
                let is_write = pkt.kind == MemKind::Write;
                if self.array.access(ds, pkt.addr, is_write) {
                    self.record(ds, true);
                    if trace::enabled(TraceCat::Llc) {
                        trace::emit(
                            TraceCat::Llc,
                            ctx.now(),
                            ds.raw(),
                            "hit",
                            &[("addr", TraceVal::U(pkt.addr.raw()))],
                        );
                    }
                    let resp = MemResp {
                        id: pkt.id,
                        ds,
                        addr: pkt.addr,
                        llc_hit: true,
                    };
                    self.responses_sent += 1;
                    let hit_latency = self.cfg.hit_latency;
                    ctx.send(pkt.reply_to, hit_latency, PardEvent::MemResp(resp));
                } else {
                    self.record(ds, false);
                    if trace::enabled(TraceCat::Llc) {
                        trace::emit(
                            TraceCat::Llc,
                            ctx.now(),
                            ds.raw(),
                            "miss",
                            &[("addr", TraceVal::U(pkt.addr.raw()))],
                        );
                    }
                    let key = MshrKey {
                        ds,
                        line: pkt.addr.line_base(),
                    };
                    let waiter = mshr_waiter(pkt.id, pkt.reply_to, is_write);
                    match self.mshr.try_insert(key, waiter) {
                        MshrOutcome::Merged => {}
                        MshrOutcome::Allocated => {
                            let fetch_id = self.ids.next_id();
                            self.outstanding.insert(fetch_id.0, key);
                            let fetch = MemPacket {
                                id: fetch_id,
                                ds,
                                addr: key.line,
                                kind: MemKind::Read,
                                size: self.cfg.geometry.line_bytes(),
                                reply_to: ctx.self_id(),
                                issued_at: ctx.now(),
                                dma: false,
                            };
                            if audit::enabled() {
                                audit::packet_inject(
                                    "mem",
                                    fetch.reply_to.raw(),
                                    fetch.id.0,
                                    fetch.ds.raw(),
                                    ctx.now(),
                                );
                            }
                            let hit_latency = self.cfg.hit_latency;
                            ctx.send(self.mem_ctrl, hit_latency, PardEvent::MemReq(fetch));
                        }
                        MshrOutcome::Full => {
                            // The core-side MLP caps make this unreachable in
                            // configured systems; fail loudly if violated.
                            panic!("LLC MSHR overflow: raise LlcConfig::mshr_entries");
                        }
                    }
                }
            }
        }
    }

    fn on_mem_resp(&mut self, resp: MemResp, ctx: &mut Ctx<'_, PardEvent>) {
        let Some(key) = self.outstanding.remove(&resp.id.0) else {
            // A response for a forwarded writeback or stale fetch: ignore.
            return;
        };
        let waiters = self.mshr.complete(key).unwrap_or_default();
        let dirty = waiters.iter().any(|w| w.is_write);
        let mask = self.mask_for(key.ds);
        let outcome = self.array.fill(key.ds, key.line, mask, dirty);
        if audit::enabled() {
            // Way-mask exclusivity: the fill must land inside the DS-id's
            // effective mask (the configured mask clipped to the real
            // associativity; an empty clip falls back to all ways, the
            // tag array's own semantics).
            let ways = self.cfg.geometry.ways();
            let full = if ways >= 64 { u64::MAX } else { (1u64 << ways) - 1 };
            let clipped = mask & full;
            let effective = if clipped == 0 { full } else { clipped };
            if effective & (1u64 << outcome.way) == 0 {
                audit::violation(
                    audit::AuditKind::Waymask,
                    ctx.now(),
                    key.ds.raw(),
                    "fill_outside_mask",
                    &[
                        ("way", TraceVal::U(u64::from(outcome.way))),
                        ("mask", TraceVal::U(effective)),
                    ],
                );
            }
        }

        if let Some(victim) = outcome.evicted {
            if victim.dirty {
                // Writeback tagged with the *owner* DS-id (§4.1) — unless
                // the ablation switch reproduces the naive design.
                let wb_ds = if self.cfg.naive_writeback_tagging {
                    key.ds
                } else {
                    victim.owner
                };
                if trace::enabled(TraceCat::Llc) {
                    trace::emit(
                        TraceCat::Llc,
                        ctx.now(),
                        wb_ds.raw(),
                        "evict",
                        &[
                            ("addr", TraceVal::U(victim.addr.raw())),
                            ("dirty", TraceVal::B(true)),
                        ],
                    );
                }
                let wb = MemPacket {
                    id: self.ids.next_id(),
                    ds: wb_ds,
                    addr: victim.addr,
                    kind: MemKind::Writeback,
                    size: self.cfg.geometry.line_bytes(),
                    reply_to: ctx.self_id(),
                    issued_at: ctx.now(),
                    dma: false,
                };
                if audit::enabled() {
                    audit::packet_inject("mem", wb.reply_to.raw(), wb.id.0, wb.ds.raw(), ctx.now());
                }
                ctx.send(self.mem_ctrl, Time::ZERO, PardEvent::MemReq(wb));
            }
        }

        let fill_latency = self.cfg.fill_latency;
        for w in waiters {
            let out = MemResp {
                id: w.id,
                ds: key.ds,
                addr: key.line,
                llc_hit: false,
            };
            self.responses_sent += 1;
            ctx.send(w.reply_to, fill_latency, PardEvent::MemResp(out));
        }
    }

    #[inline]
    fn record(&mut self, ds: DsId, hit: bool) {
        let i = ds.index();
        if i >= self.cfg.max_ds {
            return;
        }
        // Cumulative counters accumulate straight into the lock-free
        // stats cells (the paper's premise: per-access accounting without
        // serialising the pipeline). The window counters stay local — the
        // miss-rate divider at rollover needs a private epoch.
        if hit {
            self.win_hits[i] += 1;
            let _ = self.stats.add(ds, STAT_HIT_CNT, 1);
        } else {
            self.win_misses[i] += 1;
            let _ = self.stats.add(ds, STAT_MISS_CNT, 1);
        }
    }

    fn on_window(&mut self, ctx: &mut Ctx<'_, PardEvent>) {
        let now = ctx.now();
        {
            let mut cp = self.cp.lock();
            for i in 0..self.cfg.max_ds {
                if !self.active_ds[i] {
                    continue;
                }
                let ds = DsId::new(i as u16);
                let total = self.win_hits[i] + self.win_misses[i];
                if total >= self.cfg.window_min_accesses.max(1) {
                    let rate = 100 * self.win_misses[i] / total;
                    let _ = cp.stats().set(ds, STAT_MISS_RATE, rate);
                }
                let _ = cp.stats().set(ds, STAT_CAPACITY, self.array.occupancy_bytes(ds));
                if audit::enabled() {
                    // Capacity accounting: the published statistic must read
                    // back as exactly the live tag-array occupancy.
                    let live = self.array.occupancy_bytes(ds);
                    let published = cp.stat(ds, "capacity").unwrap_or(u64::MAX);
                    if published != live {
                        audit::violation(
                            audit::AuditKind::Waymask,
                            now,
                            ds.raw(),
                            "capacity_mismatch",
                            &[
                                ("published", TraceVal::U(published)),
                                ("live", TraceVal::U(live)),
                            ],
                        );
                    }
                }
                cp.evaluate_triggers(ds, now);
                self.win_hits[i] = 0;
                self.win_misses[i] = 0;
            }
        }
        if audit::enabled() {
            // Capacity accounting: ownership never exceeds the physical
            // array (each valid line has exactly one owner DS-id).
            let valid = self.array.total_valid_lines();
            let lines = self.cfg.geometry.lines();
            if valid > lines {
                audit::violation(
                    audit::AuditKind::Waymask,
                    now,
                    u16::MAX,
                    "occupancy_overflow",
                    &[
                        ("valid_lines", TraceVal::U(valid)),
                        ("total_lines", TraceVal::U(lines)),
                    ],
                );
            }
        }
        let window = self.cfg.window;
        ctx.send(ctx.self_id(), window, PardEvent::Tick(TickKind::CpWindow));
    }
}

impl Component<PardEvent> for Llc {
    fn name(&self) -> &str {
        "llc"
    }

    fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
        self.arm_window(ctx);
        match ev {
            PardEvent::MemReq(pkt) => self.on_mem_req(pkt, ctx),
            PardEvent::MemResp(resp) => self.on_mem_resp(resp, ctx),
            PardEvent::Tick(TickKind::CpWindow) => self.on_window(ctx),
            other => audit::unexpected_event(
                "llc",
                other.kind_label(),
                ctx.now(),
                other.ds().map_or(u16::MAX, DsId::raw),
            ),
        }
    }

    pard_sim::impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_icn::{LAddr, PacketId};
    use pard_sim::Simulation;

    /// A memory-controller stub answering every read after a fixed delay.
    struct MemStub {
        latency: Time,
        reads: u64,
        writebacks_by_ds: Vec<u64>,
    }

    impl Component<PardEvent> for MemStub {
        fn name(&self) -> &str {
            "memstub"
        }
        fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
            if let PardEvent::MemReq(pkt) = ev {
                match pkt.kind {
                    MemKind::Writeback => {
                        self.writebacks_by_ds[pkt.ds.index()] += 1;
                    }
                    _ => {
                        self.reads += 1;
                        let resp = MemResp {
                            id: pkt.id,
                            ds: pkt.ds,
                            addr: pkt.addr,
                            llc_hit: false,
                        };
                        let latency = self.latency;
                        ctx.send(pkt.reply_to, latency, PardEvent::MemResp(resp));
                    }
                }
            }
        }
        pard_sim::impl_as_any!();
    }

    /// Records responses for assertions.
    struct Requester {
        responses: Vec<(PacketId, bool, Time)>,
    }

    impl Component<PardEvent> for Requester {
        fn name(&self) -> &str {
            "requester"
        }
        fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
            if let PardEvent::MemResp(r) = ev {
                self.responses.push((r.id, r.llc_hit, ctx.now()));
            }
        }
        pard_sim::impl_as_any!();
    }

    struct Rig {
        sim: Simulation<PardEvent>,
        llc: ComponentId,
        requester: ComponentId,
        mem: ComponentId,
        cp: CpHandle,
    }

    fn rig() -> Rig {
        rig_with(LlcConfig {
            geometry: CacheGeometry::new(4 * 64 * 2, 4, 64), // 2 sets × 4 ways
            max_ds: 8,
            window: Time::from_us(10),
            window_min_accesses: 1,
            ..LlcConfig::default()
        })
    }

    fn rig_with(cfg: LlcConfig) -> Rig {
        let mut sim = Simulation::new();
        let (mut llc, cp) = Llc::new(cfg);
        let mem = sim.add_component(Box::new(MemStub {
            latency: Time::from_ns(50),
            reads: 0,
            writebacks_by_ds: vec![0; 8],
        }));
        llc.set_mem_ctrl(mem);
        let llc = sim.add_component(Box::new(llc));
        let requester = sim.add_component(Box::new(Requester {
            responses: Vec::new(),
        }));
        Rig {
            sim,
            llc,
            requester,
            mem,
            cp,
        }
    }

    fn req(rig: &Rig, id: u64, ds: u16, addr: u64, kind: MemKind) -> PardEvent {
        PardEvent::MemReq(MemPacket {
            id: PacketId(id),
            ds: DsId::new(ds),
            addr: LAddr::new(addr),
            kind,
            size: 64,
            reply_to: rig.requester,
            issued_at: Time::ZERO,
            dma: false,
        })
    }

    #[test]
    fn miss_then_hit_latency() {
        let mut r = rig();
        let e = req(&r, 1, 1, 0x40, MemKind::Read);
        r.sim.post(r.llc, Time::ZERO, e);
        r.sim.run_until(Time::from_us(1));
        let e = req(&r, 2, 1, 0x40, MemKind::Read);
        r.sim.post(r.llc, Time::ZERO, e);
        r.sim.run_until(Time::from_us(2));

        let hit_latency = cpu_cycles(20);
        r.sim.with_component::<Requester, _, _>(r.requester, |q| {
            assert_eq!(q.responses.len(), 2);
            let (_, hit0, _) = q.responses[0];
            let (_, hit1, t1) = q.responses[1];
            assert!(!hit0, "first access misses");
            assert!(hit1, "second access hits");
            // Hit latency = exactly the configured pipeline latency:
            // the control plane adds no extra cycles (§7.2).
            assert_eq!(t1, Time::from_us(1) + hit_latency);
        });
    }

    #[test]
    fn llc_control_plane_adds_no_latency() {
        // Install triggers and nonzero stats traffic; hit latency unchanged.
        let mut r = rig();
        {
            let mut cp = r.cp.lock();
            for slot in 0..4 {
                cp.install_trigger(
                    slot,
                    pard_cp::Trigger::new(DsId::new(1), 0, pard_cp::CmpOp::Gt, 1),
                )
                .unwrap();
            }
        }
        let e = req(&r, 1, 1, 0x40, MemKind::Read);
        r.sim.post(r.llc, Time::ZERO, e);
        r.sim.run_until(Time::from_us(1));
        let e = req(&r, 2, 1, 0x40, MemKind::Read);
        r.sim.post(r.llc, Time::ZERO, e);
        r.sim.run_until(Time::from_us(2));
        r.sim.with_component::<Requester, _, _>(r.requester, |q| {
            let (_, hit, t) = q.responses[1];
            assert!(hit);
            assert_eq!(t, Time::from_us(1) + cpu_cycles(20));
        });
    }

    #[test]
    fn same_address_different_ds_fetches_twice() {
        let mut r = rig();
        let a = req(&r, 1, 1, 0x80, MemKind::Read);
        let b = req(&r, 2, 2, 0x80, MemKind::Read);
        r.sim.post(r.llc, Time::ZERO, a);
        r.sim.post(r.llc, Time::ZERO, b);
        r.sim.run_until(Time::from_us(1));
        r.sim
            .with_component::<MemStub, _, _>(r.mem, |m| assert_eq!(m.reads, 2));
    }

    #[test]
    fn mshr_merges_same_line_same_ds() {
        let mut r = rig();
        let a = req(&r, 1, 1, 0x80, MemKind::Read);
        let b = req(&r, 2, 1, 0x84, MemKind::Read); // same line
        r.sim.post(r.llc, Time::ZERO, a);
        r.sim.post(r.llc, Time::ZERO, b);
        r.sim.run_until(Time::from_us(1));
        r.sim
            .with_component::<MemStub, _, _>(r.mem, |m| assert_eq!(m.reads, 1));
        r.sim.with_component::<Requester, _, _>(r.requester, |q| {
            assert_eq!(q.responses.len(), 2, "both waiters answered");
        });
    }

    #[test]
    fn eviction_writeback_carries_owner_ds() {
        let mut r = rig();
        // ds1 dirties 4 lines of set 0 (tags 1..=4); then ds2 floods set 0.
        for (i, tag) in (1u64..=4).enumerate() {
            let e = req(&r, i as u64, 1, tag * 2 * 64, MemKind::Write);
            r.sim.post(r.llc, Time::from_ns(i as u64 * 200), e);
        }
        r.sim.run_until(Time::from_us(2));
        for (i, tag) in (5u64..=8).enumerate() {
            let e = req(&r, 100 + i as u64, 2, tag * 2 * 64, MemKind::Read);
            r.sim.post(r.llc, Time::from_ns(i as u64 * 200), e);
        }
        r.sim.run_until(Time::from_us(4));
        r.sim.with_component::<MemStub, _, _>(r.mem, |m| {
            assert_eq!(
                m.writebacks_by_ds[1], 4,
                "all writebacks tagged with owner ds1"
            );
            assert_eq!(m.writebacks_by_ds[2], 0);
        });
    }

    #[test]
    fn waymask_partitions_capacity() {
        let mut r = rig();
        // Partition: ds1 gets ways {0,1}, ds2 gets ways {2,3}.
        {
            let mut cp = r.cp.lock();
            cp.set_param(DsId::new(1), "waymask", 0b0011).unwrap();
            cp.set_param(DsId::new(2), "waymask", 0b1100).unwrap();
        }
        // Each ds touches 8 distinct lines of set 0.
        let mut t = Time::ZERO;
        for tag in 1u64..=8 {
            for ds in [1u16, 2] {
                let e = req(
                    &r,
                    tag * 10 + u64::from(ds),
                    ds,
                    tag * 2 * 64,
                    MemKind::Read,
                );
                r.sim.post(r.llc, t, e);
                t += Time::from_ns(300);
            }
        }
        r.sim.run_until(t + Time::from_us(5));
        r.sim.with_component::<Llc, _, _>(r.llc, |llc| {
            assert_eq!(llc.occupancy_bytes(DsId::new(1)), 2 * 64);
            assert_eq!(llc.occupancy_bytes(DsId::new(2)), 2 * 64);
        });
    }

    #[test]
    fn window_publishes_stats_and_fires_triggers() {
        let mut r = rig();
        {
            let mut cp = r.cp.lock();
            cp.install_trigger(
                0,
                pard_cp::Trigger::new(
                    DsId::new(1),
                    crate::STAT_MISS_RATE.offset(),
                    pard_cp::CmpOp::Gt,
                    30,
                ),
            )
            .unwrap();
        }
        let (_, sink) = {
            let mut cp = r.cp.lock();
            let (line, sink) = pard_cp::InterruptLine::channel();
            cp.attach(0, line.clone());
            (line, sink)
        };
        // All misses -> 100% miss rate in the first window.
        for i in 0..10u64 {
            let e = req(&r, i, 1, i * 2 * 64, MemKind::Read);
            r.sim.post(r.llc, Time::from_ns(i * 100), e);
        }
        r.sim.run_until(Time::from_us(30));
        {
            let cp = r.cp.lock();
            assert_eq!(cp.stat(DsId::new(1), "miss_rate").unwrap(), 100);
            assert_eq!(cp.stat(DsId::new(1), "miss_cnt").unwrap(), 10);
            assert!(cp.stat(DsId::new(1), "capacity").unwrap() >= 64);
        }
        let irqs = sink.drain();
        assert_eq!(irqs.len(), 1, "miss-rate trigger fired once (latched)");
        assert_eq!(irqs[0].ds, DsId::new(1));
    }

    #[test]
    fn naive_writeback_tagging_misattributes_traffic() {
        // The §4.1 ablation: with the naive design, writebacks caused by
        // ds2's fills are charged to ds2 even though the dirty data is
        // ds1's — the exact statistics corruption the paper warns about.
        let mut r = rig_with(LlcConfig {
            geometry: CacheGeometry::new(4 * 64 * 2, 4, 64),
            max_ds: 8,
            window: Time::from_us(10),
            window_min_accesses: 1,
            naive_writeback_tagging: true,
            ..LlcConfig::default()
        });
        for (i, tag) in (1u64..=4).enumerate() {
            let e = req(&r, i as u64, 1, tag * 2 * 64, MemKind::Write);
            r.sim.post(r.llc, Time::from_ns(i as u64 * 200), e);
        }
        r.sim.run_until(Time::from_us(2));
        for (i, tag) in (5u64..=8).enumerate() {
            let e = req(&r, 100 + i as u64, 2, tag * 2 * 64, MemKind::Read);
            r.sim.post(r.llc, Time::from_ns(i as u64 * 200), e);
        }
        r.sim.run_until(Time::from_us(4));
        r.sim.with_component::<MemStub, _, _>(r.mem, |m| {
            assert_eq!(m.writebacks_by_ds[1], 0, "owner loses its traffic");
            assert_eq!(
                m.writebacks_by_ds[2], 4,
                "requester is wrongly charged for the owner's dirty data"
            );
        });
    }

    #[test]
    fn writeback_from_l1_absorbed_when_present() {
        let mut r = rig();
        // Load a line, then send an L1 writeback for it: no DRAM traffic.
        let e = req(&r, 1, 1, 0x40, MemKind::Read);
        r.sim.post(r.llc, Time::ZERO, e);
        r.sim.run_until(Time::from_us(1));
        let wb = req(&r, 2, 1, 0x40, MemKind::Writeback);
        r.sim.post(r.llc, Time::ZERO, wb);
        r.sim.run_until(Time::from_us(2));
        r.sim.with_component::<MemStub, _, _>(r.mem, |m| {
            assert_eq!(m.writebacks_by_ds[1], 0, "absorbed in LLC");
        });
        // Unknown line: forwarded to DRAM.
        let wb = req(&r, 3, 1, 0x9999C0, MemKind::Writeback);
        r.sim.post(r.llc, Time::ZERO, wb);
        r.sim.run_until(Time::from_us(3));
        r.sim.with_component::<MemStub, _, _>(r.mem, |m| {
            assert_eq!(m.writebacks_by_ds[1], 1);
        });
    }
}
