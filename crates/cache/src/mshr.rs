//! Miss-status holding registers.

use std::collections::HashMap;

use pard_icn::{DsId, LAddr, PacketId};
use pard_sim::ComponentId;

/// Identifies an outstanding miss: the pair `(DS-id, line address)`.
///
/// Two LDoms missing on the same numeric address are *different* misses —
/// they fetch different data (their address spaces are disjoint after
/// translation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MshrKey {
    /// Owner DS-id of the future fill.
    pub ds: DsId,
    /// Line-aligned address.
    pub line: LAddr,
}

/// A requester parked on an MSHR entry.
#[derive(Debug, Clone, Copy)]
pub struct Waiter {
    /// The original request's id (echoed in the response).
    pub id: PacketId,
    /// Where to send the response.
    pub reply_to: ComponentId,
    /// Whether the original request was a write (the filled line becomes
    /// dirty).
    pub is_write: bool,
}

/// Outcome of registering a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the caller must issue the fetch.
    Allocated,
    /// An entry for this line already existed; the waiter was merged.
    Merged,
    /// The MSHR file is full; the caller must stall or retry.
    Full,
}

/// The MSHR file: outstanding misses with merged waiters.
///
/// # Example
///
/// ```
/// use pard_cache::{Mshr, MshrKey, MshrOutcome};
/// use pard_icn::{DsId, LAddr, PacketId};
/// use pard_sim::ComponentId;
///
/// let mut m = Mshr::new(4);
/// let key = MshrKey { ds: DsId::new(1), line: LAddr::new(0x100) };
/// let w = |i| pard_cache::mshr_waiter(PacketId(i), ComponentId::from_raw(0), false);
/// assert_eq!(m.try_insert(key, w(1)), MshrOutcome::Allocated);
/// assert_eq!(m.try_insert(key, w(2)), MshrOutcome::Merged);
/// assert_eq!(m.complete(key).unwrap().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr {
    entries: HashMap<MshrKey, Vec<Waiter>>,
    capacity: usize,
}

/// Constructs a [`Waiter`] (free-function constructor keeps the struct's
/// fields public and `Copy` while staying doc-testable).
pub fn mshr_waiter(id: PacketId, reply_to: ComponentId, is_write: bool) -> Waiter {
    Waiter {
        id,
        reply_to,
        is_write,
    }
}

impl Mshr {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        Mshr {
            entries: HashMap::new(),
            capacity,
        }
    }

    /// Registers a miss for `key`.
    pub fn try_insert(&mut self, key: MshrKey, waiter: Waiter) -> MshrOutcome {
        if let Some(waiters) = self.entries.get_mut(&key) {
            waiters.push(waiter);
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(key, vec![waiter]);
        MshrOutcome::Allocated
    }

    /// Completes the miss for `key`, returning its waiters.
    pub fn complete(&mut self, key: MshrKey) -> Option<Vec<Waiter>> {
        self.entries.remove(&key)
    }

    /// Number of outstanding entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ds: u16, line: u64) -> MshrKey {
        MshrKey {
            ds: DsId::new(ds),
            line: LAddr::new(line),
        }
    }

    fn w(i: u64) -> Waiter {
        mshr_waiter(PacketId(i), ComponentId::from_raw(0), false)
    }

    #[test]
    fn allocate_merge_complete() {
        let mut m = Mshr::new(2);
        assert_eq!(m.try_insert(key(1, 0x40), w(1)), MshrOutcome::Allocated);
        assert_eq!(m.try_insert(key(1, 0x40), w(2)), MshrOutcome::Merged);
        assert_eq!(m.len(), 1);
        let waiters = m.complete(key(1, 0x40)).unwrap();
        assert_eq!(waiters.len(), 2);
        assert!(m.is_empty());
        assert!(m.complete(key(1, 0x40)).is_none());
    }

    #[test]
    fn same_line_different_ds_are_distinct_entries() {
        let mut m = Mshr::new(4);
        assert_eq!(m.try_insert(key(1, 0x40), w(1)), MshrOutcome::Allocated);
        assert_eq!(m.try_insert(key(2, 0x40), w(2)), MshrOutcome::Allocated);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn full_rejects_new_lines_but_merges_existing() {
        let mut m = Mshr::new(1);
        assert_eq!(m.try_insert(key(1, 0x40), w(1)), MshrOutcome::Allocated);
        assert_eq!(m.try_insert(key(1, 0x80), w(2)), MshrOutcome::Full);
        assert_eq!(m.try_insert(key(1, 0x40), w(3)), MshrOutcome::Merged);
        assert_eq!(m.capacity(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Mshr::new(0);
    }
}
