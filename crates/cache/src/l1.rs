//! The private per-core L1 data cache.

use pard_icn::LAddr;

use crate::geometry::CacheGeometry;
use crate::plru::PlruTree;

/// Outcome of an L1 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Outcome {
    /// Whether the access hit.
    pub hit: bool,
    /// A dirty line displaced by the fill on a miss, to be written back to
    /// the LLC (tagged with the core's DS-id — the L1 is private, so the
    /// core's current tag register *is* the owner).
    pub writeback: Option<LAddr>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    dirty: bool,
    tag: u64,
}

/// A private write-back, write-allocate L1 cache (Table 2: 64 KB 2-way,
/// 2-cycle hit).
///
/// The L1 needs no DS-id in its tags: it belongs to exactly one core, whose
/// tag register identifies all of its traffic. It fills on every miss
/// (the miss itself goes to the LLC as a tagged packet).
///
/// # Example
///
/// ```
/// use pard_cache::{CacheGeometry, L1Cache};
/// use pard_icn::LAddr;
///
/// let mut l1 = L1Cache::new(CacheGeometry::new(64 * 1024, 2, 64));
/// assert!(!l1.access(LAddr::new(0x40), false).hit);
/// assert!(l1.access(LAddr::new(0x40), false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct L1Cache {
    geom: CacheGeometry,
    entries: Vec<Entry>,
    plru: Vec<PlruTree>,
}

impl L1Cache {
    /// Creates an empty L1.
    pub fn new(geom: CacheGeometry) -> Self {
        L1Cache {
            geom,
            entries: vec![Entry::default(); geom.lines() as usize],
            plru: vec![PlruTree::new(geom.ways()); geom.sets() as usize],
        }
    }

    /// The geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    #[inline]
    fn idx(&self, set: u64, way: u32) -> usize {
        (set * u64::from(self.geom.ways()) + u64::from(way)) as usize
    }

    /// Performs an access; on a miss the line is filled (write-allocate)
    /// and any displaced dirty line is reported for writeback.
    pub fn access(&mut self, addr: LAddr, is_write: bool) -> L1Outcome {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);

        for w in 0..self.geom.ways() {
            let i = self.idx(set, w);
            if self.entries[i].valid && self.entries[i].tag == tag {
                self.plru[set as usize].touch(w);
                if is_write {
                    self.entries[i].dirty = true;
                }
                return L1Outcome {
                    hit: true,
                    writeback: None,
                };
            }
        }

        // Miss: fill, preferring an invalid way.
        let way = (0..self.geom.ways())
            .find(|&w| !self.entries[self.idx(set, w)].valid)
            .unwrap_or_else(|| self.plru[set as usize].victim(u64::MAX));
        let i = self.idx(set, way);
        let old = self.entries[i];
        let writeback = (old.valid && old.dirty).then(|| self.geom.addr_of(old.tag, set));
        self.entries[i] = Entry {
            valid: true,
            dirty: is_write,
            tag,
        };
        self.plru[set as usize].touch(way);
        L1Outcome {
            hit: false,
            writeback,
        }
    }

    /// Invalidates everything (LDom reassignment of the core).
    pub fn flush(&mut self) {
        for e in &mut self.entries {
            *e = Entry::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Cache {
        // Tiny: 2 sets × 2 ways.
        L1Cache::new(CacheGeometry::new(2 * 2 * 64, 2, 64))
    }

    fn addr(set: u64, tag: u64) -> LAddr {
        LAddr::new((tag * 2 + set) * 64)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = l1();
        assert!(!c.access(addr(0, 1), false).hit);
        assert!(c.access(addr(0, 1), false).hit);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = l1();
        c.access(addr(0, 1), true); // dirty
        c.access(addr(0, 2), false);
        let out = c.access(addr(0, 3), false); // evicts one of them
                                               // Whichever was evicted, a writeback appears only if it was dirty.
        if let Some(wb) = out.writeback {
            assert_eq!(wb, addr(0, 1));
        } else {
            // The clean line was evicted; next fill must evict the dirty one.
            let out = c.access(addr(0, 4), false);
            assert_eq!(out.writeback, Some(addr(0, 1)));
        }
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = l1();
        c.access(addr(1, 1), false);
        c.access(addr(1, 2), false);
        let out = c.access(addr(1, 3), false);
        assert!(out.writeback.is_none());
    }

    #[test]
    fn flush_empties_the_cache() {
        let mut c = l1();
        c.access(addr(0, 1), true);
        c.flush();
        assert!(!c.access(addr(0, 1), false).hit);
    }

    #[test]
    fn table2_l1_geometry_works() {
        let mut c = L1Cache::new(CacheGeometry::new(64 * 1024, 2, 64));
        assert_eq!(c.geometry().sets(), 512);
        assert!(!c.access(LAddr::new(0), false).hit);
        assert!(c.access(LAddr::new(0), false).hit);
    }
}
