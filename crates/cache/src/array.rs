//! The tag array with per-block owner DS-ids.

use pard_icn::{DsId, LAddr};

use crate::geometry::CacheGeometry;
use crate::plru::PlruTree;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    dirty: bool,
    tag: u64,
    owner: DsId,
}

/// A block evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line-aligned address of the evicted block (in the owner's LDom
    /// address space).
    pub addr: LAddr,
    /// The evicted block's **owner DS-id** — the tag a writeback packet
    /// must carry (paper §4.1).
    pub owner: DsId,
    /// Whether the block was dirty (requires a writeback).
    pub dirty: bool,
}

/// Result of filling a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// The way the new block was placed in.
    pub way: u32,
    /// The block displaced, if the chosen way was valid.
    pub evicted: Option<Victim>,
}

/// The LLC tag array: `(tag, owner DS-id, state)` per block, plus per-set
/// pseudo-LRU and per-DS-id occupancy counters.
///
/// A lookup hits **iff** both the address tag and the owner DS-id match
/// (paper footnote 4) — different LDoms use identical numeric addresses
/// for different data.
///
/// # Example
///
/// ```
/// use pard_cache::{CacheGeometry, TagArray};
/// use pard_icn::{DsId, LAddr};
///
/// let mut a = TagArray::new(CacheGeometry::new(8192, 2, 64), 4);
/// let (ds1, ds2) = (DsId::new(1), DsId::new(2));
/// a.fill(ds1, LAddr::new(0x40), u64::MAX, false);
/// assert!(a.access(ds1, LAddr::new(0x40), false));
/// // Same address, different LDom: miss.
/// assert!(!a.access(ds2, LAddr::new(0x40), false));
/// ```
#[derive(Debug, Clone)]
pub struct TagArray {
    geom: CacheGeometry,
    entries: Vec<Entry>,
    plru: Vec<PlruTree>,
    owned_lines: Vec<u64>,
}

impl TagArray {
    /// Creates an empty array supporting DS-ids `0..max_ds`.
    pub fn new(geom: CacheGeometry, max_ds: usize) -> Self {
        let lines = geom.lines() as usize;
        TagArray {
            geom,
            entries: vec![Entry::default(); lines],
            plru: vec![PlruTree::new(geom.ways()); geom.sets() as usize],
            owned_lines: vec![0; max_ds],
        }
    }

    /// The geometry this array was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    #[inline]
    fn idx(&self, set: u64, way: u32) -> usize {
        (set * u64::from(self.geom.ways()) + u64::from(way)) as usize
    }

    /// Probes for `(ds, addr)` without touching replacement state.
    pub fn probe(&self, ds: DsId, addr: LAddr) -> Option<u32> {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        (0..self.geom.ways()).find(|&w| {
            let e = &self.entries[self.idx(set, w)];
            e.valid && e.tag == tag && e.owner == ds
        })
    }

    /// Performs a demand access: on hit, updates PLRU (and the dirty bit
    /// for writes) and returns `true`; on miss returns `false`.
    pub fn access(&mut self, ds: DsId, addr: LAddr, is_write: bool) -> bool {
        let Some(way) = self.probe(ds, addr) else {
            return false;
        };
        let set = self.geom.set_of(addr);
        self.plru[set as usize].touch(way);
        if is_write {
            let i = self.idx(set, way);
            self.entries[i].dirty = true;
        }
        true
    }

    /// Marks `(ds, addr)` dirty if present (L1 writeback absorption).
    /// Returns whether the block was found.
    pub fn mark_dirty(&mut self, ds: DsId, addr: LAddr) -> bool {
        let Some(way) = self.probe(ds, addr) else {
            return false;
        };
        let set = self.geom.set_of(addr);
        let i = self.idx(set, way);
        self.entries[i].dirty = true;
        self.plru[set as usize].touch(way);
        true
    }

    /// Fills the line containing `addr` for owner `ds`, choosing a victim
    /// among the ways allowed by `mask` (invalid allowed ways are preferred).
    ///
    /// The returned [`FillOutcome::evicted`] carries the displaced block's
    /// owner DS-id so the caller can tag the writeback correctly.
    pub fn fill(&mut self, ds: DsId, addr: LAddr, mask: u64, dirty: bool) -> FillOutcome {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        debug_assert!(
            self.probe(ds, addr).is_none(),
            "filling a line that is already present"
        );

        let full = if self.geom.ways() == 64 {
            u64::MAX
        } else {
            (1u64 << self.geom.ways()) - 1
        };
        let eff_mask = {
            let m = mask & full;
            if m == 0 {
                full
            } else {
                m
            }
        };

        // Prefer an invalid way inside the partition.
        let way = (0..self.geom.ways())
            .find(|&w| eff_mask & (1 << w) != 0 && !self.entries[self.idx(set, w)].valid)
            .unwrap_or_else(|| self.plru[set as usize].victim(eff_mask));

        let i = self.idx(set, way);
        let old = self.entries[i];
        let evicted = if old.valid {
            if let Some(c) = self.owned_lines.get_mut(old.owner.index()) {
                *c -= 1;
            }
            Some(Victim {
                addr: self.geom.addr_of(old.tag, set),
                owner: old.owner,
                dirty: old.dirty,
            })
        } else {
            None
        };

        self.entries[i] = Entry {
            valid: true,
            dirty,
            tag,
            owner: ds,
        };
        if let Some(c) = self.owned_lines.get_mut(ds.index()) {
            *c += 1;
        }
        self.plru[set as usize].touch(way);
        FillOutcome { way, evicted }
    }

    /// Invalidates every block owned by `ds`, returning the dirty ones for
    /// writeback (LDom teardown / cache flush).
    pub fn invalidate_ds(&mut self, ds: DsId) -> Vec<Victim> {
        let mut dirty = Vec::new();
        for set in 0..self.geom.sets() {
            for way in 0..self.geom.ways() {
                let i = self.idx(set, way);
                let e = self.entries[i];
                if e.valid && e.owner == ds {
                    if e.dirty {
                        dirty.push(Victim {
                            addr: self.geom.addr_of(e.tag, set),
                            owner: ds,
                            dirty: true,
                        });
                    }
                    self.entries[i] = Entry::default();
                    if let Some(c) = self.owned_lines.get_mut(ds.index()) {
                        *c -= 1;
                    }
                }
            }
        }
        dirty
    }

    /// Number of lines currently owned by `ds`.
    pub fn occupancy_lines(&self, ds: DsId) -> u64 {
        self.owned_lines.get(ds.index()).copied().unwrap_or(0)
    }

    /// Bytes currently owned by `ds`.
    pub fn occupancy_bytes(&self, ds: DsId) -> u64 {
        self.occupancy_lines(ds) * u64::from(self.geom.line_bytes())
    }

    /// Total valid lines across all owners.
    pub fn total_valid_lines(&self) -> u64 {
        self.owned_lines.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TagArray {
        // 2 sets, 4 ways, 64B lines.
        TagArray::new(CacheGeometry::new(2 * 4 * 64, 4, 64), 8)
    }

    fn line(set: u64, tag: u64) -> LAddr {
        LAddr::new((tag * 2 + set) * 64)
    }

    #[test]
    fn hit_requires_owner_match() {
        let mut a = small();
        let addr = line(0, 5);
        a.fill(DsId::new(1), addr, u64::MAX, false);
        assert!(a.probe(DsId::new(1), addr).is_some());
        assert!(a.probe(DsId::new(2), addr).is_none());
        assert!(a.access(DsId::new(1), addr, false));
        assert!(!a.access(DsId::new(2), addr, false));
    }

    #[test]
    fn two_ldoms_cache_same_address_separately() {
        let mut a = small();
        let addr = line(0, 5);
        a.fill(DsId::new(1), addr, u64::MAX, false);
        a.fill(DsId::new(2), addr, u64::MAX, false);
        assert!(a.probe(DsId::new(1), addr).is_some());
        assert!(a.probe(DsId::new(2), addr).is_some());
        assert_eq!(a.occupancy_lines(DsId::new(1)), 1);
        assert_eq!(a.occupancy_lines(DsId::new(2)), 1);
    }

    #[test]
    fn eviction_reports_owner_for_writeback_tagging() {
        let mut a = small();
        // Fill set 0 completely with dirty ds1 lines.
        for tag in 0..4 {
            a.fill(DsId::new(1), line(0, tag), u64::MAX, true);
        }
        // ds2 fill must evict a ds1 block and report ds1 as the owner.
        let out = a.fill(DsId::new(2), line(0, 9), u64::MAX, false);
        let victim = out.evicted.expect("set was full");
        assert_eq!(victim.owner, DsId::new(1));
        assert!(victim.dirty);
        assert_eq!(a.occupancy_lines(DsId::new(1)), 3);
        assert_eq!(a.occupancy_lines(DsId::new(2)), 1);
    }

    #[test]
    fn fill_prefers_invalid_ways_within_mask() {
        let mut a = small();
        a.fill(DsId::new(1), line(0, 1), 0b0011, false);
        let out = a.fill(DsId::new(1), line(0, 2), 0b0011, false);
        assert!(out.evicted.is_none(), "second way of partition was free");
        assert!(out.way < 2);
        // Third fill in a 2-way partition must evict within the partition.
        let out = a.fill(DsId::new(1), line(0, 3), 0b0011, false);
        assert!(out.evicted.is_some());
        assert!(out.way < 2);
    }

    #[test]
    fn write_access_sets_dirty_and_eviction_sees_it() {
        let mut a = small();
        let addr = line(1, 7);
        a.fill(DsId::new(3), addr, 0b0001, false);
        assert!(a.access(DsId::new(3), addr, true));
        let out = a.fill(DsId::new(3), line(1, 8), 0b0001, false);
        assert!(out.evicted.unwrap().dirty);
    }

    #[test]
    fn mark_dirty_finds_block() {
        let mut a = small();
        let addr = line(0, 2);
        assert!(!a.mark_dirty(DsId::new(1), addr));
        a.fill(DsId::new(1), addr, u64::MAX, false);
        assert!(a.mark_dirty(DsId::new(1), addr));
        let out = a.fill(DsId::new(1), line(0, 3), 0b0001, false);
        // Way 0 held the dirty block if chosen; just check the evicted
        // victim address reconstructs correctly when present.
        if let Some(v) = out.evicted {
            assert_eq!(v.addr, addr.line_base());
        }
    }

    #[test]
    fn invalidate_ds_returns_dirty_blocks_and_clears_occupancy() {
        let mut a = small();
        a.fill(DsId::new(1), line(0, 1), u64::MAX, true);
        a.fill(DsId::new(1), line(1, 2), u64::MAX, false);
        a.fill(DsId::new(2), line(0, 3), u64::MAX, true);
        let dirty = a.invalidate_ds(DsId::new(1));
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].owner, DsId::new(1));
        assert_eq!(a.occupancy_lines(DsId::new(1)), 0);
        assert_eq!(a.occupancy_lines(DsId::new(2)), 1);
        assert_eq!(a.total_valid_lines(), 1);
    }

    #[test]
    fn occupancy_bytes_scales_by_line() {
        let mut a = small();
        a.fill(DsId::new(4), line(0, 1), u64::MAX, false);
        assert_eq!(a.occupancy_bytes(DsId::new(4)), 64);
    }
}
