//! Seeded randomized tests of the firmware's data structures.

use pard_prm::script::{eval_expr, expand, parse_num, Env};
use pard_prm::{DeviceFileTree, MemAllocator, Node};
use pard_sim::check::{cases, string_of, vec_of, DEFAULT_CASES};
use pard_sim::rng::Rng;

fn any_path(rng: &mut impl Rng) -> Vec<String> {
    vec_of(rng, 1..4, |r| string_of(r, "abcdefghijklmnopqrstuvwxyz", 1..5))
}

/// The allocator never hands out overlapping regions and never loses
/// capacity across arbitrary alloc/free interleavings.
#[test]
fn allocator_regions_are_disjoint_and_conserved() {
    cases("prm.allocator_disjoint_conserved", DEFAULT_CASES, |rng| {
        let ops = vec_of(rng, 1..100, |r| (r.gen_range(1u64..1000), r.gen_bool(0.5)));
        let capacity = 64 * 1024;
        let mut a = MemAllocator::new(capacity);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for &(size, free_instead) in &ops {
            if free_instead && !live.is_empty() {
                let (base, sz) = live.swap_remove(0);
                a.free(base, sz);
            } else if let Ok(base) = a.allocate(size) {
                // Disjointness against every live region.
                for &(b, s) in &live {
                    assert!(
                        base + size <= b || b + s <= base,
                        "overlap: [{base},+{size}) vs [{b},+{s})"
                    );
                }
                assert!(base + size <= capacity);
                live.push((base, size));
            }
        }
        let live_bytes: u64 = live.iter().map(|&(_, s)| s).sum();
        assert_eq!(a.free_bytes() + live_bytes, capacity, "capacity conserved");
        // Freeing everything restores a single full extent.
        for (b, s) in live.drain(..) {
            a.free(b, s);
        }
        assert_eq!(a.free_bytes(), capacity);
        assert_eq!(a.allocate(capacity).unwrap(), 0);
    });
}

/// parse_num accepts what u64 formatting produces, in both bases.
#[test]
fn parse_num_round_trips() {
    cases("prm.parse_num_round_trips", DEFAULT_CASES, |rng| {
        let v = rng.next_u64();
        assert_eq!(parse_num(&v.to_string()).unwrap(), v);
        assert_eq!(parse_num(&format!("{v:#x}")).unwrap(), v);
        assert_eq!(parse_num(&format!("0X{v:X}")).unwrap(), v);
    });
}

/// pardscript arithmetic agrees with Rust for random two-operand
/// expressions across every operator.
#[test]
fn arithmetic_matches_rust() {
    cases("prm.arithmetic_matches_rust", DEFAULT_CASES, |rng| {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let ops = ["+", "-", "*", "&", "|", "^", "/", "%"];
        let op = ops[rng.gen_range(0..ops.len())];
        let expected = match op {
            "+" => a.wrapping_add(b),
            "-" => a.wrapping_sub(b),
            "*" => a.wrapping_mul(b),
            "&" => a & b,
            "|" => a | b,
            "^" => a ^ b,
            "/" => a.checked_div(b).unwrap_or(0),
            "%" => a.checked_rem(b).unwrap_or(0),
            _ => unreachable!(),
        };
        let env = Env::new();
        assert_eq!(eval_expr(&format!("{a} {op} {b}"), &env).unwrap(), expected);
    });
}

/// Variable expansion substitutes exactly the set variables and leaves
/// text without `$` untouched.
#[test]
fn expansion_is_exact() {
    cases("prm.expansion_is_exact", DEFAULT_CASES, |rng| {
        let value = string_of(rng, "abcdefghijklmnopqrstuvwxyz0123456789", 0..9);
        let prefix = string_of(rng, "abcdefghijklmnopqrstuvwxyz ", 0..9);
        let suffix = string_of(rng, "abcdefghijklmnopqrstuvwxyz ", 0..9);
        let mut env = Env::new();
        env.set("V", value.clone());
        // `$V` must be delimited from following identifier characters
        // (shell rules: `$Va` names the variable `Va`), hence the slash.
        assert_eq!(
            expand(&format!("{prefix}$V/{suffix}"), &env),
            format!("{prefix}{value}/{suffix}")
        );
        assert_eq!(expand(&prefix, &env), prefix.clone());
        assert_eq!(
            expand(&format!("{prefix}${{V}}{suffix}"), &env),
            format!("{prefix}{value}{suffix}")
        );
    });
}

/// The device file tree behaves like a map from paths to contents,
/// for any interleaving of mkdir/install/write/remove.
#[test]
fn file_tree_is_a_path_map() {
    cases("prm.file_tree_is_a_path_map", DEFAULT_CASES, |rng| {
        let ops = vec_of(rng, 1..60, |r| {
            (
                any_path(r),
                string_of(r, "abcdefghijklmnopqrstuvwxyz0123456789", 0..7),
                r.gen_range(0u8..4),
            )
        });
        let mut tree = DeviceFileTree::new();
        let mut model: std::collections::HashMap<String, String> = Default::default();
        for (segs, content, op) in &ops {
            let path = format!("/{}", segs.join("/"));
            let parent = match segs.split_last() {
                Some((_, rest)) if !rest.is_empty() => format!("/{}", rest.join("/")),
                _ => "/".to_string(),
            };
            match op {
                0 => {
                    // Install a data file (parent dirs created first). May
                    // legitimately fail if a path component is a file.
                    if tree.mkdir_all(&parent).is_ok()
                        && tree.install(&path, Node::Data(content.clone())).is_ok()
                    {
                        model.insert(path.clone(), content.clone());
                        // Installing over a directory erases that subtree.
                        model.retain(|p, _| p == &path || !p.starts_with(&format!("{path}/")));
                    }
                }
                1 => {
                    if model.contains_key(&path) {
                        tree.write(&path, content).unwrap();
                        model.insert(path.clone(), content.clone());
                    }
                }
                2 => {
                    if tree.remove(&path).is_ok() {
                        model.retain(|p, _| p != &path && !p.starts_with(&format!("{path}/")));
                    }
                }
                _ => {
                    // Read must agree with the model for file paths.
                    if let Some(expected) = model.get(&path) {
                        assert_eq!(&tree.read(&path).unwrap(), expected);
                    }
                }
            }
        }
        // Final sweep: every modelled file reads back exactly.
        for (path, expected) in &model {
            assert_eq!(&tree.read(path).unwrap(), expected, "path {path}");
        }
    });
}

/// Shift amounts wrap like Rust's wrapping_shl/shr.
#[test]
fn shifts_match_rust() {
    cases("prm.shifts_match_rust", DEFAULT_CASES, |rng| {
        let a = rng.next_u64();
        let s = rng.gen_range(0u64..200);
        let env = Env::new();
        assert_eq!(
            eval_expr(&format!("{a} << {s}"), &env).unwrap(),
            a.wrapping_shl(s as u32)
        );
        assert_eq!(
            eval_expr(&format!("{a} >> {s}"), &env).unwrap(),
            a.wrapping_shr(s as u32)
        );
    });
}
