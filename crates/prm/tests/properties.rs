//! Property-based tests of the firmware's data structures.

use pard_prm::script::{eval_expr, expand, parse_num, Env};
use pard_prm::{DeviceFileTree, MemAllocator, Node};
use proptest::prelude::*;

fn any_path() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-z]{1,4}", 1..4)
}

proptest! {
    /// The allocator never hands out overlapping regions and never loses
    /// capacity across arbitrary alloc/free interleavings.
    #[test]
    fn allocator_regions_are_disjoint_and_conserved(
        ops in prop::collection::vec((1u64..1000, any::<bool>()), 1..100),
    ) {
        let capacity = 64 * 1024;
        let mut a = MemAllocator::new(capacity);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for &(size, free_instead) in &ops {
            if free_instead && !live.is_empty() {
                let (base, sz) = live.swap_remove(0);
                a.free(base, sz);
            } else if let Ok(base) = a.allocate(size) {
                // Disjointness against every live region.
                for &(b, s) in &live {
                    prop_assert!(base + size <= b || b + s <= base,
                        "overlap: [{base},+{size}) vs [{b},+{s})");
                }
                prop_assert!(base + size <= capacity);
                live.push((base, size));
            }
        }
        let live_bytes: u64 = live.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(a.free_bytes() + live_bytes, capacity, "capacity conserved");
        // Freeing everything restores a single full extent.
        for (b, s) in live.drain(..) {
            a.free(b, s);
        }
        prop_assert_eq!(a.free_bytes(), capacity);
        prop_assert_eq!(a.allocate(capacity).unwrap(), 0);
    }

    /// parse_num accepts what u64 formatting produces, in both bases.
    #[test]
    fn parse_num_round_trips(v in any::<u64>()) {
        prop_assert_eq!(parse_num(&v.to_string()).unwrap(), v);
        prop_assert_eq!(parse_num(&format!("{v:#x}")).unwrap(), v);
        prop_assert_eq!(parse_num(&format!("0X{v:X}")).unwrap(), v);
    }

    /// pardscript arithmetic agrees with Rust for random two-operand
    /// expressions across every operator.
    #[test]
    fn arithmetic_matches_rust(a in any::<u64>(), b in any::<u64>(), op_idx in 0usize..8) {
        let ops = ["+", "-", "*", "&", "|", "^", "/", "%"];
        let op = ops[op_idx];
        let expected = match op {
            "+" => a.wrapping_add(b),
            "-" => a.wrapping_sub(b),
            "*" => a.wrapping_mul(b),
            "&" => a & b,
            "|" => a | b,
            "^" => a ^ b,
            "/" => a.checked_div(b).unwrap_or(0),
            "%" => a.checked_rem(b).unwrap_or(0),
            _ => unreachable!(),
        };
        let env = Env::new();
        prop_assert_eq!(eval_expr(&format!("{a} {op} {b}"), &env).unwrap(), expected);
    }

    /// Variable expansion substitutes exactly the set variables and leaves
    /// text without `$` untouched.
    #[test]
    fn expansion_is_exact(value in "[a-z0-9]{0,8}", prefix in "[a-z ]{0,8}", suffix in "[a-z ]{0,8}") {
        let mut env = Env::new();
        env.set("V", value.clone());
        // `$V` must be delimited from following identifier characters
        // (shell rules: `$Va` names the variable `Va`), hence the slash.
        prop_assert_eq!(
            expand(&format!("{prefix}$V/{suffix}"), &env),
            format!("{prefix}{value}/{suffix}")
        );
        prop_assert_eq!(expand(&prefix, &env), prefix.clone());
        prop_assert_eq!(
            expand(&format!("{prefix}${{V}}{suffix}"), &env),
            format!("{prefix}{value}{suffix}")
        );
    }

    /// The device file tree behaves like a map from paths to contents,
    /// for any interleaving of mkdir/install/write/remove.
    #[test]
    fn file_tree_is_a_path_map(
        ops in prop::collection::vec((any_path(), "[a-z0-9]{0,6}", 0u8..4), 1..60),
    ) {
        let mut tree = DeviceFileTree::new();
        let mut model: std::collections::HashMap<String, String> = Default::default();
        for (segs, content, op) in &ops {
            let path = format!("/{}", segs.join("/"));
            let parent = match segs.split_last() {
                Some((_, rest)) if !rest.is_empty() => format!("/{}", rest.join("/")),
                _ => "/".to_string(),
            };
            match op {
                0 => {
                    // Install a data file (parent dirs created first). May
                    // legitimately fail if a path component is a file.
                    if tree.mkdir_all(&parent).is_ok()
                        && tree.install(&path, Node::Data(content.clone())).is_ok()
                    {
                        model.insert(path.clone(), content.clone());
                        // Installing over a directory erases that subtree.
                        model.retain(|p, _| {
                            p == &path || !p.starts_with(&format!("{path}/"))
                        });
                    }
                }
                1 => {
                    if model.contains_key(&path) {
                        tree.write(&path, content).unwrap();
                        model.insert(path.clone(), content.clone());
                    }
                }
                2 => {
                    if tree.remove(&path).is_ok() {
                        model.retain(|p, _| {
                            p != &path && !p.starts_with(&format!("{path}/"))
                        });
                    }
                }
                _ => {
                    // Read must agree with the model for file paths.
                    if let Some(expected) = model.get(&path) {
                        prop_assert_eq!(&tree.read(&path).unwrap(), expected);
                    }
                }
            }
        }
        // Final sweep: every modelled file reads back exactly.
        for (path, expected) in &model {
            prop_assert_eq!(&tree.read(path).unwrap(), expected, "path {}", path);
        }
    }

    /// Shift amounts wrap like Rust's wrapping_shl/shr.
    #[test]
    fn shifts_match_rust(a in any::<u64>(), s in 0u64..200) {
        let env = Env::new();
        prop_assert_eq!(
            eval_expr(&format!("{a} << {s}"), &env).unwrap(),
            a.wrapping_shl(s as u32)
        );
        prop_assert_eq!(
            eval_expr(&format!("{a} >> {s}"), &env).unwrap(),
            a.wrapping_shr(s as u32)
        );
    }
}
