//! `pardscript` — the firmware's action-script language.
//!
//! The paper's trigger handlers are shell scripts (Fig. 6, Example 2):
//!
//! ```sh
//! #!/bin/sh
//! echo "<log message>" > /log/triggers.log
//! cur_mask=$(cat /sys/cpa/.../waymask)
//! miss_rate=$(cat /sys/cpa/.../miss_rate)
//! new_mask=$((cur_mask | 0xFF00))
//! echo $new_mask > /sys/cpa/.../waymask
//! ```
//!
//! `pardscript` implements the shell subset those handlers need:
//! assignments (`x=…`, `x=$(cat PATH)`, `x=$((EXPR))`), `echo VALUE >
//! PATH`, `log MESSAGE`, `if [ A -op B ]; then … else … fi` (nestable),
//! `exit`, comments, and `$VAR` / `${VAR}` expansion everywhere.
//! Arithmetic supports decimal and `0x` literals with
//! `+ - * / % & | ^ << >>` and parentheses (all `u64`, wrapping).

use std::collections::HashMap;

use crate::error::FwError;

/// The I/O surface a script runs against — implemented by the firmware
/// (`cat`/`echo` walk the device file tree, `log` appends to the firmware
/// log).
pub trait ScriptIo {
    /// `cat PATH`.
    fn cat(&mut self, path: &str) -> Result<String, FwError>;
    /// `echo VALUE > PATH`.
    fn echo(&mut self, path: &str, value: &str) -> Result<(), FwError>;
    /// `log MESSAGE`.
    fn log(&mut self, message: &str);
}

/// Script variables.
#[derive(Debug, Clone, Default)]
pub struct Env {
    vars: HashMap<String, String>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a variable.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.vars.insert(name.into(), value.into());
    }

    /// Reads a variable (empty string when unset, like the shell).
    pub fn get(&self, name: &str) -> &str {
        self.vars.get(name).map_or("", String::as_str)
    }
}

/// Expands `$VAR` and `${VAR}` references in `s`.
pub fn expand(s: &str, env: &Env) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'$' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'{' {
                if let Some(end) = s[i + 2..].find('}') {
                    out.push_str(env.get(&s[i + 2..i + 2 + end]));
                    i += 2 + end + 1;
                    continue;
                }
            } else if bytes[i + 1].is_ascii_alphabetic() || bytes[i + 1] == b'_' {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                out.push_str(env.get(&s[i + 1..j]));
                i = j;
                continue;
            }
        }
        // Copy one whole character — scripts may log/echo non-ASCII text,
        // and a byte-wise copy would mangle it.
        let ch_len = s[i..].chars().next().map_or(1, char::len_utf8);
        out.push_str(&s[i..i + ch_len]);
        i += ch_len;
    }
    out
}

/// Parses a decimal or `0x` numeric literal.
pub fn parse_num(s: &str) -> Result<u64, FwError> {
    let t = s.trim();
    let parsed = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        t.parse()
    };
    parsed.map_err(|_| FwError::BadValue(t.to_string()))
}

// ---------------------------------------------------------------- arithmetic

struct ExprParser<'a> {
    tokens: Vec<&'a str>,
    pos: usize,
    env: &'a Env,
}

fn tokenize_expr(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            c if c.is_ascii_whitespace() => i += 1,
            b'<' | b'>' if i + 1 < b.len() && b[i + 1] == b[i] => {
                out.push(&s[i..i + 2]);
                i += 2;
            }
            b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^' | b'(' | b')' => {
                out.push(&s[i..i + 1]);
                i += 1;
            }
            _ => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == b'_'
                        || b[i] == b'x'
                        || b[i] == b'X')
                {
                    i += 1;
                }
                if i == start {
                    // Unknown character; emit it whole (it may be
                    // multi-byte — a one-byte slice would panic off a char
                    // boundary) so parsing fails with a useful message.
                    let ch_len = s[i..].chars().next().map_or(1, char::len_utf8);
                    out.push(&s[i..i + ch_len]);
                    i += ch_len;
                } else {
                    out.push(&s[start..i]);
                }
            }
        }
    }
    out
}

impl<'a> ExprParser<'a> {
    fn peek(&self) -> Option<&'a str> {
        self.tokens.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<&'a str> {
        let t = self.peek();
        self.pos += 1;
        t
    }

    fn primary(&mut self) -> Result<u64, FwError> {
        match self.bump() {
            Some("(") => {
                let v = self.expr(0)?;
                if self.bump() != Some(")") {
                    return Err(FwError::BadValue("missing )".into()));
                }
                Ok(v)
            }
            Some("-") => Ok(self.primary()?.wrapping_neg()),
            Some(tok) => parse_num(tok).or_else(|e| {
                // Shell arithmetic resolves bare identifiers as variables.
                if tok
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                {
                    parse_num(self.env.get(tok))
                } else {
                    Err(e)
                }
            }),
            None => Err(FwError::BadValue("empty expression".into())),
        }
    }

    fn binding_power(op: &str) -> Option<(u8, u8)> {
        Some(match op {
            "|" => (1, 2),
            "^" => (3, 4),
            "&" => (5, 6),
            "<<" | ">>" => (7, 8),
            "+" | "-" => (9, 10),
            "*" | "/" | "%" => (11, 12),
            _ => return None,
        })
    }

    fn expr(&mut self, min_bp: u8) -> Result<u64, FwError> {
        let mut lhs = self.primary()?;
        while let Some(op) = self.peek() {
            let Some((lbp, rbp)) = Self::binding_power(op) else {
                break;
            };
            if lbp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.expr(rbp)?;
            lhs = match op {
                "+" => lhs.wrapping_add(rhs),
                "-" => lhs.wrapping_sub(rhs),
                "*" => lhs.wrapping_mul(rhs),
                "/" => lhs.checked_div(rhs).unwrap_or(0),
                "%" => lhs.checked_rem(rhs).unwrap_or(0),
                "&" => lhs & rhs,
                "|" => lhs | rhs,
                "^" => lhs ^ rhs,
                "<<" => lhs.wrapping_shl(rhs as u32),
                ">>" => lhs.wrapping_shr(rhs as u32),
                _ => unreachable!(),
            };
        }
        Ok(lhs)
    }
}

/// Evaluates an arithmetic expression (after variable expansion).
pub fn eval_expr(expr: &str, env: &Env) -> Result<u64, FwError> {
    let expanded = expand(expr, env);
    let mut p = ExprParser {
        tokens: tokenize_expr(&expanded),
        pos: 0,
        env,
    };
    let v = p.expr(0)?;
    if p.pos != p.tokens.len() {
        return Err(FwError::BadValue(format!(
            "trailing tokens in expression {expr:?}"
        )));
    }
    Ok(v)
}

// ------------------------------------------------------------- interpreter

#[derive(Debug)]
enum Stmt {
    Log(String),
    Assign {
        var: String,
        value: RValue,
    },
    Echo {
        value: String,
        path: String,
    },
    If {
        lhs: String,
        op: String,
        rhs: String,
        then_body: Vec<(usize, Stmt)>,
        else_body: Vec<(usize, Stmt)>,
    },
    Exit,
}

#[derive(Debug)]
enum RValue {
    Literal(String),
    Cat(String),
    Arith(String),
}

fn script_err(line: usize, message: impl Into<String>) -> FwError {
    FwError::Script {
        line,
        message: message.into(),
    }
}

fn strip_quotes(s: &str) -> &str {
    let t = s.trim();
    if t.len() >= 2 && (t.starts_with('"') && t.ends_with('"')) {
        &t[1..t.len() - 1]
    } else {
        t
    }
}

fn parse_block(
    lines: &[(usize, &str)],
    cursor: &mut usize,
    in_if: bool,
) -> Result<Vec<(usize, Stmt)>, FwError> {
    let mut body = Vec::new();
    while *cursor < lines.len() {
        let (lineno, raw) = lines[*cursor];
        let line = raw.trim();
        *cursor += 1;

        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if in_if && (line == "fi" || line == "else") {
            *cursor -= 1; // let the caller consume it
            return Ok(body);
        }
        let stmt = if let Some(rest) = line.strip_prefix("log ") {
            Stmt::Log(strip_quotes(rest).to_string())
        } else if line == "exit" {
            Stmt::Exit
        } else if let Some(rest) = line.strip_prefix("echo ") {
            let (value, path) = rest
                .rsplit_once('>')
                .ok_or_else(|| script_err(lineno, "echo without redirection"))?;
            Stmt::Echo {
                value: strip_quotes(value).to_string(),
                path: path.trim().to_string(),
            }
        } else if let Some(rest) = line.strip_prefix("if ") {
            // `if [ $x -gt 30 ]; then`
            let cond = rest
                .trim()
                .strip_suffix("then")
                .map(|c| c.trim().trim_end_matches(';').trim())
                .ok_or_else(|| script_err(lineno, "if without then"))?;
            let inner = cond
                .strip_prefix('[')
                .and_then(|c| c.strip_suffix(']'))
                .ok_or_else(|| script_err(lineno, "condition must be [ a -op b ]"))?;
            let parts: Vec<&str> = inner.split_whitespace().collect();
            let [lhs, op, rhs] = parts[..] else {
                return Err(script_err(lineno, "condition must have three terms"));
            };
            let then_body = parse_block(lines, cursor, true)?;
            let mut else_body = Vec::new();
            match lines.get(*cursor).map(|&(_, l)| l.trim()) {
                Some("else") => {
                    *cursor += 1;
                    else_body = parse_block(lines, cursor, true)?;
                    match lines.get(*cursor).map(|&(_, l)| l.trim()) {
                        Some("fi") => *cursor += 1,
                        _ => return Err(script_err(lineno, "if without fi")),
                    }
                }
                Some("fi") => *cursor += 1,
                _ => return Err(script_err(lineno, "if without fi")),
            }
            Stmt::If {
                lhs: lhs.to_string(),
                op: op.to_string(),
                rhs: rhs.to_string(),
                then_body,
                else_body,
            }
        } else if let Some((var, rhs)) = line.split_once('=') {
            let var = var.trim();
            if var.is_empty() || !var.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(script_err(lineno, format!("bad statement {line:?}")));
            }
            let rhs = rhs.trim();
            let value = if let Some(inner) =
                rhs.strip_prefix("$((").and_then(|r| r.strip_suffix("))"))
            {
                RValue::Arith(inner.to_string())
            } else if let Some(inner) = rhs.strip_prefix("$(").and_then(|r| r.strip_suffix(')')) {
                let path = inner
                    .trim()
                    .strip_prefix("cat ")
                    .ok_or_else(|| script_err(lineno, "only $(cat PATH) is supported"))?;
                RValue::Cat(path.trim().to_string())
            } else {
                RValue::Literal(strip_quotes(rhs).to_string())
            };
            Stmt::Assign {
                var: var.to_string(),
                value,
            }
        } else {
            return Err(script_err(lineno, format!("bad statement {line:?}")));
        };
        body.push((lineno, stmt));
    }
    if in_if {
        Err(script_err(
            lines.last().map(|&(n, _)| n).unwrap_or(0),
            "if without fi",
        ))
    } else {
        Ok(body)
    }
}

fn eval_cond(lineno: usize, lhs: &str, op: &str, rhs: &str, env: &Env) -> Result<bool, FwError> {
    let a = parse_num(&expand(lhs, env)).map_err(|e| script_err(lineno, e.to_string()))?;
    let b = parse_num(&expand(rhs, env)).map_err(|e| script_err(lineno, e.to_string()))?;
    Ok(match op {
        "-gt" => a > b,
        "-ge" => a >= b,
        "-lt" => a < b,
        "-le" => a <= b,
        "-eq" => a == b,
        "-ne" => a != b,
        _ => return Err(script_err(lineno, format!("unknown operator {op}"))),
    })
}

fn exec_block(
    body: &[(usize, Stmt)],
    env: &mut Env,
    io: &mut dyn ScriptIo,
) -> Result<bool, FwError> {
    for (lineno, stmt) in body {
        match stmt {
            Stmt::Log(msg) => io.log(&expand(msg, env)),
            Stmt::Exit => return Ok(false),
            Stmt::Echo { value, path } => {
                let value = expand(value, env);
                let path = expand(path, env);
                io.echo(&path, &value)
                    .map_err(|e| script_err(*lineno, e.to_string()))?;
            }
            Stmt::Assign { var, value } => {
                let v = match value {
                    RValue::Literal(s) => expand(s, env),
                    RValue::Cat(path) => {
                        let path = expand(path, env);
                        io.cat(&path)
                            .map_err(|e| script_err(*lineno, e.to_string()))?
                    }
                    RValue::Arith(expr) => eval_expr(expr, env)
                        .map_err(|e| script_err(*lineno, e.to_string()))?
                        .to_string(),
                };
                env.set(var.clone(), v);
            }
            Stmt::If {
                lhs,
                op,
                rhs,
                then_body,
                else_body,
            } => {
                let branch = if eval_cond(*lineno, lhs, op, rhs, env)? {
                    then_body
                } else {
                    else_body
                };
                if !exec_block(branch, env, io)? {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

/// Runs a `pardscript` program.
///
/// # Errors
///
/// Returns [`FwError::Script`] with the offending line on parse or
/// execution failures; I/O errors from the firmware are wrapped likewise.
pub fn run(source: &str, env: &mut Env, io: &mut dyn ScriptIo) -> Result<(), FwError> {
    let lines: Vec<(usize, &str)> = source
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .collect();
    let mut cursor = 0;
    let program = parse_block(&lines, &mut cursor, false)?;
    exec_block(&program, env, io)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct MockIo {
        files: HashMap<String, String>,
        logs: Vec<String>,
    }

    impl ScriptIo for MockIo {
        fn cat(&mut self, path: &str) -> Result<String, FwError> {
            self.files
                .get(path)
                .cloned()
                .ok_or_else(|| FwError::NoSuchPath(path.to_string()))
        }
        fn echo(&mut self, path: &str, value: &str) -> Result<(), FwError> {
            self.files.insert(path.to_string(), value.to_string());
            Ok(())
        }
        fn log(&mut self, message: &str) {
            self.logs.push(message.to_string());
        }
    }

    #[test]
    fn the_papers_example2_shape_runs() {
        let mut io = MockIo::default();
        io.files.insert(
            "/sys/cpa/cpa0/ldoms/ldom0/parameters/waymask".into(),
            "255".into(),
        );
        io.files.insert(
            "/sys/cpa/cpa0/ldoms/ldom0/statistics/miss_rate".into(),
            "45".into(),
        );
        let script = r#"
# trigger handler: widen the cache partition when thrashing
log "llc trigger fired for ldom $DS"
cur_mask=$(cat /sys/cpa/cpa0/ldoms/ldom$DS/parameters/waymask)
miss_rate=$(cat /sys/cpa/cpa0/ldoms/ldom$DS/statistics/miss_rate)
if [ $miss_rate -gt 30 ]; then
    new_mask=$((cur_mask | 0xFF00))
    echo $new_mask > /sys/cpa/cpa0/ldoms/ldom$DS/parameters/waymask
fi
"#;
        let mut env = Env::new();
        env.set("DS", "0");
        run(script, &mut env, &mut io).unwrap();
        assert_eq!(
            io.files["/sys/cpa/cpa0/ldoms/ldom0/parameters/waymask"],
            (255u64 | 0xFF00).to_string()
        );
        assert_eq!(io.logs, vec!["llc trigger fired for ldom 0"]);
    }

    #[test]
    fn else_branch_and_exit() {
        let mut io = MockIo::default();
        let script = r#"
x=5
if [ $x -gt 10 ]; then
    log "big"
else
    log "small"
    exit
fi
log "unreachable"
"#;
        run(script, &mut Env::new(), &mut io).unwrap();
        assert_eq!(io.logs, vec!["small"]);
    }

    #[test]
    fn nested_ifs() {
        let mut io = MockIo::default();
        let script = r#"
a=1
b=2
if [ $a -eq 1 ]; then
    if [ $b -eq 2 ]; then
        log "both"
    fi
fi
"#;
        run(script, &mut Env::new(), &mut io).unwrap();
        assert_eq!(io.logs, vec!["both"]);
    }

    #[test]
    fn arithmetic_operators_and_precedence() {
        let env = Env::new();
        assert_eq!(eval_expr("1 + 2 * 3", &env).unwrap(), 7);
        assert_eq!(eval_expr("(1 + 2) * 3", &env).unwrap(), 9);
        assert_eq!(eval_expr("0xFF00 | 0x00FF", &env).unwrap(), 0xFFFF);
        assert_eq!(eval_expr("1 << 4", &env).unwrap(), 16);
        assert_eq!(eval_expr("255 >> 4", &env).unwrap(), 15);
        assert_eq!(eval_expr("7 % 4 + 10 / 2", &env).unwrap(), 8);
        assert_eq!(eval_expr("5 & 3 ^ 1", &env).unwrap(), 0);
        assert_eq!(eval_expr("10 / 0", &env).unwrap(), 0, "shell-style div0");
    }

    #[test]
    fn expansion_forms() {
        let mut env = Env::new();
        env.set("DS", "2");
        env.set("name_x", "v");
        assert_eq!(expand("ldom$DS/file", &env), "ldom2/file");
        assert_eq!(expand("${DS}x", &env), "2x");
        assert_eq!(expand("$name_x", &env), "v");
        assert_eq!(expand("$UNSET-", &env), "-");
        assert_eq!(expand("a$1", &env), "a$1", "non-identifier preserved");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = run("x=1\n???", &mut Env::new(), &mut MockIo::default()).unwrap_err();
        match err {
            FwError::Script { line, .. } => assert_eq!(line, 2),
            other => panic!("expected script error, got {other}"),
        }
        assert!(run(
            "if [ 1 -gt 0 ]; then\nlog hi",
            &mut Env::new(),
            &mut MockIo::default()
        )
        .is_err());
        assert!(run("echo 5", &mut Env::new(), &mut MockIo::default()).is_err());
        assert!(run(
            "if 1 > 2; then\nfi",
            &mut Env::new(),
            &mut MockIo::default()
        )
        .is_err());
    }

    #[test]
    fn cat_of_missing_file_fails_with_line() {
        let err = run("x=$(cat /nope)", &mut Env::new(), &mut MockIo::default()).unwrap_err();
        match err {
            FwError::Script { line: 1, message } => assert!(message.contains("/nope")),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn multibyte_input_errors_instead_of_panicking() {
        // Arithmetic on a non-ASCII operand must produce a typed error
        // carrying the offending token, never a char-boundary panic.
        let env = Env::new();
        let err = eval_expr("1 + ✗", &env).unwrap_err();
        assert!(err.to_string().contains('✗'), "got: {err}");
        assert!(eval_expr("émoji", &env).is_err());

        // Expansion must round-trip non-ASCII text untouched.
        let mut env = Env::new();
        env.set("DS", "3");
        assert_eq!(expand("λdom$DS → done", &env), "λdom3 → done");

        // A malformed statement with multi-byte junk reports its line.
        let err = run("x=1\n✗✗✗", &mut Env::new(), &mut MockIo::default()).unwrap_err();
        match err {
            FwError::Script { line, .. } => assert_eq!(line, 2),
            other => panic!("expected script error, got {other}"),
        }
    }

    #[test]
    fn bad_condition_operands_are_typed_errors() {
        let script = "if [ $UNSET -gt banana ]; then\nlog hi\nfi";
        let err = run(script, &mut Env::new(), &mut MockIo::default()).unwrap_err();
        match err {
            FwError::Script { line: 1, message } => {
                assert!(!message.is_empty(), "message names the bad operand");
            }
            other => panic!("expected script error, got {other}"),
        }
    }

    #[test]
    fn hex_and_decimal_values() {
        assert_eq!(parse_num("0xFF00").unwrap(), 0xFF00);
        assert_eq!(parse_num(" 42 ").unwrap(), 42);
        assert!(parse_num("zz").is_err());
    }
}
