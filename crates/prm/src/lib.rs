//! # pard-prm — the platform resource manager
//!
//! PARD's third and fourth mechanisms (§3 ③④, §5): an IPMI-like embedded
//! system running a Linux-based firmware that
//!
//! * connects to every control plane through **control-plane adaptors**
//!   (CPAs) mapped into a 64 KB I/O window,
//! * abstracts the control planes as a **device file tree**
//!   (`/sys/cpa/cpaN/ldoms/ldomM/{parameters,statistics,triggers}`)
//!   accessible with `cat`/`echo`-style operations ([`Firmware::read`],
//!   [`Firmware::write`], [`Firmware::shell`]),
//! * manages **logical domains** (LDoms): DS-id assignment, machine-memory
//!   allocation, control-plane programming, interrupt routing
//!   ([`Firmware::create_ldom`]),
//! * implements the **"trigger ⇒ action"** methodology: triggers installed
//!   into control-plane trigger tables (via [`Firmware::pardtrigger`])
//!   raise interrupts that the firmware dispatches to *actions* — either
//!   [`pardscript`](crate::script) shell scripts (the paper's Example 2)
//!   or native Rust hooks.
//!
//! The [`Prm`] component gives the firmware its place on the simulated
//! machine: it polls the interrupt sink at the firmware's service interval
//! (modelling the 100 MHz management core's latency) and issues queued
//! core-control commands.
//!
//! # Paper mapping
//!
//! | paper | here |
//! |---|---|
//! | §3 ③ control-plane adaptors, Fig. 6 register window | `cpa` |
//! | §5 device file tree (`/sys/cpa/...`) | [`Firmware`] tree + hooks |
//! | §5 LDom lifecycle (create/launch/destroy) | the LDom manager |
//! | Fig. 6 Example 1 (`pardtrigger`) | [`Firmware::pardtrigger`] |
//! | Fig. 6 Example 2 (pardscript action) | the [`script`] module |
//! | §3.4 "trigger ⇒ action" | trigger interrupts → action dispatch |
//! | beyond the paper: PRM federation | [`federation`] (escalations up to a fleet manager, DESIGN.md §15) |

#![warn(missing_docs)]

mod alloc;
mod error;
pub mod federation;
mod firmware;
mod ldom;
mod metrics;
mod prm;
pub mod recovery;
pub mod script;
mod tree;

pub use alloc::MemAllocator;
pub use error::FwError;
pub use firmware::{
    Action, ActionEnv, Escalation, Firmware, FirmwareConfig, FwHandle, NativeAction,
};
pub use metrics::{DsRow, MetricsRegistry, MetricsSnapshot, PlaneMetrics};
pub use ldom::{LDomInfo, LDomSpec, Priority};
pub use prm::Prm;
pub use tree::{DeviceFileTree, Node};
