//! # pard-prm — the platform resource manager
//!
//! PARD's third and fourth mechanisms (§3 ③④, §5): an IPMI-like embedded
//! system running a Linux-based firmware that
//!
//! * connects to every control plane through **control-plane adaptors**
//!   (CPAs) mapped into a 64 KB I/O window,
//! * abstracts the control planes as a **device file tree**
//!   (`/sys/cpa/cpaN/ldoms/ldomM/{parameters,statistics,triggers}`)
//!   accessible with `cat`/`echo`-style operations ([`Firmware::read`],
//!   [`Firmware::write`], [`Firmware::shell`]),
//! * manages **logical domains** (LDoms): DS-id assignment, machine-memory
//!   allocation, control-plane programming, interrupt routing
//!   ([`Firmware::create_ldom`]),
//! * implements the **"trigger ⇒ action"** methodology: triggers installed
//!   into control-plane trigger tables (via [`Firmware::pardtrigger`])
//!   raise interrupts that the firmware dispatches to *actions* — either
//!   [`pardscript`](crate::script) shell scripts (the paper's Example 2)
//!   or native Rust hooks.
//!
//! The [`Prm`] component gives the firmware its place on the simulated
//! machine: it polls the interrupt sink at the firmware's service interval
//! (modelling the 100 MHz management core's latency) and issues queued
//! core-control commands.

#![warn(missing_docs)]

mod alloc;
mod error;
mod firmware;
mod ldom;
mod metrics;
mod prm;
pub mod recovery;
pub mod script;
mod tree;

pub use alloc::MemAllocator;
pub use error::FwError;
pub use firmware::{Action, ActionEnv, Firmware, FirmwareConfig, FwHandle, NativeAction};
pub use metrics::{DsRow, MetricsRegistry, MetricsSnapshot, PlaneMetrics};
pub use ldom::{LDomInfo, LDomSpec, Priority};
pub use prm::Prm;
pub use tree::{DeviceFileTree, Node};
