//! Logical-domain specifications.

use pard_icn::DsId;
use pard_sim::Time;

/// Scheduling priority of an LDom, mapped to the memory control plane's
/// priority class and row-buffer grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Normal (batch) priority: low memory-scheduling class.
    #[default]
    Normal,
    /// High (latency-critical) priority: high memory-scheduling class and
    /// use of the per-bank high-priority row buffer.
    High,
}

/// A request to create an LDom: a fully-virtualised submachine owning CPU
/// cores, memory capacity, and storage (paper §3, footnote 3).
#[derive(Debug, Clone)]
pub struct LDomSpec {
    /// Human-readable name (shows up in the firmware log).
    pub name: String,
    /// Indices into the server's core list.
    pub cores: Vec<usize>,
    /// Memory capacity in bytes (contiguous machine-physical allocation).
    pub mem_bytes: u64,
    /// Scheduling priority.
    pub priority: Priority,
    /// Optional disk-bandwidth quota in percent.
    pub disk_quota_pct: Option<u64>,
    /// Optional v-NIC MAC address.
    pub mac: Option<[u8; 6]>,
}

impl LDomSpec {
    /// Creates a normal-priority spec.
    pub fn new(name: impl Into<String>, cores: Vec<usize>, mem_bytes: u64) -> Self {
        LDomSpec {
            name: name.into(),
            cores,
            mem_bytes,
            priority: Priority::Normal,
            disk_quota_pct: None,
            mac: None,
        }
    }

    /// Marks the LDom latency-critical.
    pub fn high_priority(mut self) -> Self {
        self.priority = Priority::High;
        self
    }

    /// Sets a disk-bandwidth quota.
    pub fn disk_quota(mut self, pct: u64) -> Self {
        self.disk_quota_pct = Some(pct);
        self
    }

    /// Attaches a v-NIC with the given MAC.
    pub fn with_mac(mut self, mac: [u8; 6]) -> Self {
        self.mac = Some(mac);
        self
    }
}

/// A created LDom.
#[derive(Debug, Clone)]
pub struct LDomInfo {
    /// The DS-id assigned by the firmware.
    pub ds: DsId,
    /// The creation spec.
    pub spec: LDomSpec,
    /// Machine-physical base of the LDom's memory.
    pub mem_base: u64,
    /// Firmware time of creation.
    pub created_at: Time,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let spec = LDomSpec::new("mc", vec![0], 1 << 30)
            .high_priority()
            .disk_quota(80)
            .with_mac([2, 0, 0, 0, 0, 1]);
        assert_eq!(spec.priority, Priority::High);
        assert_eq!(spec.disk_quota_pct, Some(80));
        assert!(spec.mac.is_some());
        assert_eq!(spec.cores, vec![0]);
    }

    #[test]
    fn default_priority_is_normal() {
        assert_eq!(Priority::default(), Priority::Normal);
    }
}
