//! The PRM component: the firmware's seat on the simulated machine.

use pard_icn::{PardEvent, TickKind};
use pard_sim::{Component, Ctx, Time};

use crate::firmware::FwHandle;

/// The platform-resource-manager component.
///
/// The PRM is an embedded SoC (Table 2: one 100 MHz core, 16 MB DRAM)
/// polling its control-plane adaptors. This component models that service
/// loop: every `poll` interval it advances the firmware clock, services
/// pending control-plane interrupts (dispatching trigger actions), and
/// issues any core-control commands the firmware queued (LDom tag loads,
/// launches, stops).
///
/// The poll interval is the reaction latency of the whole
/// "trigger ⇒ action" path — a property the ablation benchmarks measure.
pub struct Prm {
    fw: FwHandle,
    poll: Time,
    armed: bool,
    interrupts_serviced: u64,
}

impl Prm {
    /// Creates the component around a firmware handle.
    pub fn new(fw: FwHandle, poll: Time) -> Self {
        Prm {
            fw,
            poll,
            armed: false,
            interrupts_serviced: 0,
        }
    }

    /// The firmware handle.
    pub fn firmware(&self) -> &FwHandle {
        &self.fw
    }

    /// Total interrupts serviced.
    pub fn interrupts_serviced(&self) -> u64 {
        self.interrupts_serviced
    }

    fn service(&mut self, ctx: &mut Ctx<'_, PardEvent>) {
        let cmds = {
            let mut fw = self.fw.lock();
            fw.set_now(ctx.now());
            self.interrupts_serviced += fw.service_interrupts() as u64;
            fw.take_core_cmds()
        };
        for (core, cmd) in cmds {
            ctx.send(core, Time::ZERO, PardEvent::CoreCtl(cmd));
        }
    }
}

impl Component<PardEvent> for Prm {
    fn name(&self) -> &str {
        "prm"
    }

    fn handle(&mut self, ev: PardEvent, ctx: &mut Ctx<'_, PardEvent>) {
        match ev {
            PardEvent::Tick(TickKind::Prm) => {
                self.service(ctx);
                self.armed = true;
                let poll = self.poll;
                ctx.send(ctx.self_id(), poll, PardEvent::Tick(TickKind::Prm));
            }
            // Any other event acts as a doorbell: service immediately.
            _ => self.service(ctx),
        }
    }

    pard_sim::impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::{Action, Firmware, FirmwareConfig};
    use crate::ldom::LDomSpec;
    use pard_cp::{shared, CmpOp};
    use pard_icn::CoreCommand;
    use pard_sim::Simulation;

    struct CoreStub {
        cmds: Vec<CoreCommand>,
    }

    impl Component<PardEvent> for CoreStub {
        fn name(&self) -> &str {
            "corestub"
        }
        fn handle(&mut self, ev: PardEvent, _ctx: &mut Ctx<'_, PardEvent>) {
            if let PardEvent::CoreCtl(cmd) = ev {
                self.cmds.push(cmd);
            }
        }
        pard_sim::impl_as_any!();
    }

    #[test]
    fn prm_polls_interrupts_and_delivers_core_commands() {
        let mut sim: Simulation<PardEvent> = Simulation::new();
        let core = sim.add_component(Box::new(CoreStub { cmds: Vec::new() }));

        let mut fw = Firmware::new(FirmwareConfig {
            mem_capacity: 1 << 30,
            max_ds: 8,
        });
        let cache = shared(pard_cache::llc_control_plane(8, 4));
        fw.register_cpa(cache.clone());
        fw.set_cores(vec![core]);
        let ds = fw
            .create_ldom(LDomSpec::new("t", vec![0], 1 << 20))
            .unwrap();
        fw.pardtrigger(0, ds, 0, "miss_rate", CmpOp::Gt, 30)
            .unwrap();
        fw.register_action(
            "fix",
            Action::Native(Box::new(|fw, _env| fw.log("action ran"))),
        );
        fw.write("/sys/cpa/cpa0/ldoms/ldom0/triggers/0", "fix")
            .unwrap();
        fw.launch_ldom(ds).unwrap();
        let fw = fw.into_handle();

        let prm = sim.add_component(Box::new(Prm::new(fw.clone(), Time::from_us(100))));
        sim.post(prm, Time::ZERO, PardEvent::Tick(TickKind::Prm));

        // Fire the trigger from the "hardware" side.
        {
            let mut cp = cache.lock();
            let key = cp.stats().key("miss_rate").unwrap();
            cp.stats().set(ds, key, 50).unwrap();
            cp.evaluate_triggers(ds, Time::from_us(150));
        }
        sim.run_until(Time::from_ms(1));

        sim.with_component::<CoreStub, _, _>(core, |c| {
            assert_eq!(
                c.cmds,
                vec![CoreCommand::SetTag(0), CoreCommand::Start],
                "tag load then launch"
            );
        });
        sim.with_component::<Prm, _, _>(prm, |p| assert_eq!(p.interrupts_serviced(), 1));
        assert!(fw
            .lock()
            .log_entries()
            .iter()
            .any(|(_, m)| m == "action ran"));
    }
}
