//! Shipped trigger-driven **recovery actions** — the resilience playbook.
//!
//! The fault-injection layer ([`pard_sim::fault`]) degrades service inside
//! component models; the control planes observe the degradation through
//! their statistics tables; a [`TriggerMode::DegradationPct`] trigger
//! (installed via [`Firmware::pardtrigger_with_mode`] or the shell's
//! `-cond=degr,N` form) raises an interrupt; and the firmware dispatches
//! one of the [`pardscript`](crate::script) programs below. Each script
//! manipulates only the `/sys` device-file tree — exactly what an operator
//! at the PRM console could type by hand — so recovery is an *exercise of
//! the paper's "trigger ⇒ action" methodology*, not a privileged backdoor
//! into the models:
//!
//! * [`dram_reprioritize`] — flip the LDom's memory-controller `priority`
//!   and `rowbuf` parameters on `cpa1` so its requests bypass the
//!   admission gate that faulted banks are congesting,
//! * [`llc_rebalance`] — widen the LDom's `waymask` on `cpa0` so cache
//!   misses stop amplifying the slow DRAM path,
//! * [`ide_raise_quota`] — raise the LDom's `bandwidth` share on `cpa3`
//!   to outweigh fault-degraded disk quanta,
//! * [`composite`] — all three in one handler (the action `fig_fault`
//!   binds to its degradation trigger), and
//! * [`install_composite`] — registers the composite under a name.
//!
//! All scripts expand `$DS` (the watched LDom's DS-id) at dispatch time,
//! so one registered action serves any LDom whose trigger names it.
//!
//! [`TriggerMode::DegradationPct`]: pard_cp::TriggerMode::DegradationPct

use crate::firmware::{Action, Firmware};

/// Pardscript: raise the dispatching LDom's DRAM service class on `cpa1`.
///
/// Sets `priority=1` (bypass the bus admission gate) and `rowbuf=1`
/// (reserved row-buffer policy), and logs the old priority for the
/// operator's audit trail.
#[must_use]
pub fn dram_reprioritize() -> String {
    r#"old=$(cat /sys/cpa/cpa1/ldoms/ldom$DS/parameters/priority)
echo 1 > /sys/cpa/cpa1/ldoms/ldom$DS/parameters/priority
echo 1 > /sys/cpa/cpa1/ldoms/ldom$DS/parameters/rowbuf
log "recovery: ldom$DS dram priority $old -> 1 (rowbuf on)"
"#
    .to_string()
}

/// Pardscript: widen the dispatching LDom's LLC `waymask` on `cpa0` by
/// OR-ing in `extra_ways` (a way-bit mask, e.g. `0xFF00`), optionally
/// reassigning those ways *from* a donor LDom by writing the donor's new
/// mask. Without the donor step the widened ways stay shared with their
/// previous owner, whose allocations keep evicting the protected LDom's
/// lines — widening alone is not a transfer of capacity.
#[must_use]
pub fn llc_rebalance(extra_ways: u64, donor: Option<(u32, u64)>) -> String {
    let mut s = format!(
        r#"cur=$(cat /sys/cpa/cpa0/ldoms/ldom$DS/parameters/waymask)
new=$((cur | {extra_ways:#x}))
echo $new > /sys/cpa/cpa0/ldoms/ldom$DS/parameters/waymask
log "recovery: ldom$DS waymask $cur -> $new"
"#
    );
    if let Some((donor_ldom, donor_mask)) = donor {
        s.push_str(&format!(
            r#"dcur=$(cat /sys/cpa/cpa0/ldoms/ldom{donor_ldom}/parameters/waymask)
echo {donor_mask:#x} > /sys/cpa/cpa0/ldoms/ldom{donor_ldom}/parameters/waymask
log "recovery: donor ldom{donor_ldom} waymask $dcur -> {donor_mask:#x}"
"#
        ));
    }
    s
}

/// Pardscript: raise the dispatching LDom's IDE `bandwidth` share on
/// `cpa3` to `quota` (a proportional-share weight).
#[must_use]
pub fn ide_raise_quota(quota: u64) -> String {
    format!(
        r#"old=$(cat /sys/cpa/cpa3/ldoms/ldom$DS/parameters/bandwidth)
echo {quota} > /sys/cpa/cpa3/ldoms/ldom$DS/parameters/bandwidth
log "recovery: ldom$DS ide quota $old -> {quota}"
"#
    )
}

/// The composite recovery handler: DRAM re-prioritisation, LLC way
/// rebalance (optionally reclaiming the ways from a donor LDom), and IDE
/// quota raise in one script, guarded so it is idempotent when the
/// level-latched trigger re-fires after re-arming.
#[must_use]
pub fn composite(extra_ways: u64, donor: Option<(u32, u64)>, ide_quota: u64) -> String {
    format!(
        r#"log "recovery: degradation trigger fired for ldom$DS (cpa$CPA slot $SLOT)"
prio=$(cat /sys/cpa/cpa1/ldoms/ldom$DS/parameters/priority)
if [ $prio -eq 0 ]; then
{}{}{}else
    log "recovery: ldom$DS already promoted"
fi
"#,
        indent(&dram_reprioritize()),
        indent(&llc_rebalance(extra_ways, donor)),
        indent(&ide_raise_quota(ide_quota)),
    )
}

/// Registers [`composite`] under `name` so a `triggers/{action}` leaf can
/// bind to it.
pub fn install_composite(
    fw: &mut Firmware,
    name: &str,
    extra_ways: u64,
    donor: Option<(u32, u64)>,
    ide_quota: u64,
) {
    fw.register_action(name, Action::Script(composite(extra_ways, donor, ide_quota)));
}

fn indent(script: &str) -> String {
    script
        .lines()
        .map(|l| format!("    {l}\n"))
        .collect::<String>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_scripts_have_expected_shape() {
        let c = composite(0xFF00, Some((1, 0x00F0)), 80);
        assert!(c.contains("parameters/priority"));
        assert!(c.contains("parameters/waymask"));
        assert!(c.contains("parameters/bandwidth"));
        assert!(c.contains("0xff00"));
        assert!(c.contains("echo 80 >"));
        // The donor's ways are reassigned by constant, not widened.
        assert!(c.contains("echo 0xf0 > /sys/cpa/cpa0/ldoms/ldom1/parameters/waymask"));
        // Idempotence guard wraps the mutating body.
        assert!(c.contains("if [ $prio -eq 0 ]; then"));
        assert!(ide_raise_quota(50).contains("cpa3"));
        assert!(dram_reprioritize().contains("cpa1"));
        assert!(llc_rebalance(1, None).contains("cpa0"));
        assert!(!llc_rebalance(1, None).contains("donor"));
    }
}
