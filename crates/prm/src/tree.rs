//! The device file tree (the firmware's sysfs).

use std::collections::BTreeMap;
use std::fmt;

use crate::error::FwError;

/// Read handler of a closure-backed file.
pub type ReadFn = Box<dyn FnMut() -> String + Send>;
/// Write handler of a closure-backed file.
pub type WriteFn = Box<dyn FnMut(&str) -> Result<(), FwError> + Send>;

/// A node in the device file tree.
pub enum Node {
    /// A directory of named children.
    Dir(BTreeMap<String, Node>),
    /// A plain data file (e.g. trigger-action bindings, logs).
    Data(String),
    /// A closure-backed file (control-plane cells: reads and writes go
    /// through the CPA programming interface).
    Hook {
        /// Produces the file's content.
        read: ReadFn,
        /// Consumes written content; `None` for read-only files.
        write: Option<WriteFn>,
    },
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Dir(children) => f.debug_map().entries(children.iter()).finish(),
            Node::Data(s) => write!(f, "Data({s:?})"),
            Node::Hook { write, .. } => {
                write!(f, "Hook(rw={})", if write.is_some() { "rw" } else { "ro" })
            }
        }
    }
}

/// The sysfs-like tree the firmware mounts all control planes into
/// (paper §5.1, Fig. 6).
///
/// Paths are absolute, `/`-separated, rooted at `/`:
/// `"/sys/cpa/cpa0/ldoms/ldom0/parameters/waymask"`.
///
/// # Example
///
/// ```
/// use pard_prm::{DeviceFileTree, Node};
/// let mut t = DeviceFileTree::new();
/// t.mkdir_all("/sys/cpa").unwrap();
/// t.install("/sys/cpa/hello", Node::Data("world".into())).unwrap();
/// assert_eq!(t.read("/sys/cpa/hello").unwrap(), "world");
/// assert_eq!(t.list("/sys/cpa").unwrap(), vec!["hello".to_string()]);
/// ```
pub struct DeviceFileTree {
    root: Node,
}

impl Default for DeviceFileTree {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for DeviceFileTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DeviceFileTree({:?})", self.root)
    }
}

fn components(path: &str) -> Result<Vec<&str>, FwError> {
    if !path.starts_with('/') {
        return Err(FwError::NoSuchPath(path.to_string()));
    }
    Ok(path.split('/').filter(|c| !c.is_empty()).collect())
}

impl DeviceFileTree {
    /// Creates a tree containing only the root directory.
    pub fn new() -> Self {
        DeviceFileTree {
            root: Node::Dir(BTreeMap::new()),
        }
    }

    fn lookup(&self, path: &str) -> Result<&Node, FwError> {
        let mut node = &self.root;
        for c in components(path)? {
            match node {
                Node::Dir(children) => {
                    node = children
                        .get(c)
                        .ok_or_else(|| FwError::NoSuchPath(path.to_string()))?;
                }
                _ => return Err(FwError::NoSuchPath(path.to_string())),
            }
        }
        Ok(node)
    }

    fn lookup_mut(&mut self, path: &str) -> Result<&mut Node, FwError> {
        let mut node = &mut self.root;
        for c in components(path)? {
            match node {
                Node::Dir(children) => {
                    node = children
                        .get_mut(c)
                        .ok_or_else(|| FwError::NoSuchPath(path.to_string()))?;
                }
                _ => return Err(FwError::NoSuchPath(path.to_string())),
            }
        }
        Ok(node)
    }

    /// Creates the directory `path` and all missing ancestors.
    ///
    /// # Errors
    ///
    /// Fails if a path component exists and is a file.
    pub fn mkdir_all(&mut self, path: &str) -> Result<(), FwError> {
        let mut node = &mut self.root;
        for c in components(path)? {
            match node {
                Node::Dir(children) => {
                    node = children
                        .entry(c.to_string())
                        .or_insert_with(|| Node::Dir(BTreeMap::new()));
                }
                _ => return Err(FwError::NotAFile(path.to_string())),
            }
        }
        match node {
            Node::Dir(_) => Ok(()),
            _ => Err(FwError::NotAFile(path.to_string())),
        }
    }

    /// Installs `node` at `path` (parent must exist), replacing any
    /// previous occupant.
    ///
    /// # Errors
    ///
    /// Fails if the parent directory does not exist.
    pub fn install(&mut self, path: &str, node: Node) -> Result<(), FwError> {
        let comps = components(path)?;
        let (name, parent_comps) = comps
            .split_last()
            .ok_or_else(|| FwError::NoSuchPath(path.to_string()))?;
        let mut parent = &mut self.root;
        for c in parent_comps {
            match parent {
                Node::Dir(children) => {
                    parent = children
                        .get_mut(*c)
                        .ok_or_else(|| FwError::NoSuchPath(path.to_string()))?;
                }
                _ => return Err(FwError::NoSuchPath(path.to_string())),
            }
        }
        match parent {
            Node::Dir(children) => {
                children.insert((*name).to_string(), node);
                Ok(())
            }
            _ => Err(FwError::NotAFile(path.to_string())),
        }
    }

    /// Removes the node at `path` (file or whole subtree).
    ///
    /// # Errors
    ///
    /// Fails if the path does not exist.
    pub fn remove(&mut self, path: &str) -> Result<(), FwError> {
        let comps = components(path)?;
        let (name, parent_comps) = comps
            .split_last()
            .ok_or_else(|| FwError::NoSuchPath(path.to_string()))?;
        let mut parent = &mut self.root;
        for c in parent_comps {
            match parent {
                Node::Dir(children) => {
                    parent = children
                        .get_mut(*c)
                        .ok_or_else(|| FwError::NoSuchPath(path.to_string()))?;
                }
                _ => return Err(FwError::NoSuchPath(path.to_string())),
            }
        }
        match parent {
            Node::Dir(children) => children
                .remove(*name)
                .map(|_| ())
                .ok_or_else(|| FwError::NoSuchPath(path.to_string())),
            _ => Err(FwError::NoSuchPath(path.to_string())),
        }
    }

    /// Reads a file (`cat`).
    ///
    /// # Errors
    ///
    /// Fails if the path is missing or is a directory.
    pub fn read(&mut self, path: &str) -> Result<String, FwError> {
        match self.lookup_mut(path)? {
            Node::Data(s) => Ok(s.clone()),
            Node::Hook { read, .. } => Ok(read()),
            Node::Dir(_) => Err(FwError::NotAFile(path.to_string())),
        }
    }

    /// Writes a file (`echo ... >`).
    ///
    /// # Errors
    ///
    /// Fails if the path is missing, is a directory, or is read-only.
    pub fn write(&mut self, path: &str, content: &str) -> Result<(), FwError> {
        match self.lookup_mut(path)? {
            Node::Data(s) => {
                *s = content.to_string();
                Ok(())
            }
            Node::Hook { write, .. } => match write {
                Some(w) => w(content),
                None => Err(FwError::ReadOnly(path.to_string())),
            },
            Node::Dir(_) => Err(FwError::NotAFile(path.to_string())),
        }
    }

    /// Lists a directory's children (`ls`).
    ///
    /// # Errors
    ///
    /// Fails if the path is missing or is a file.
    pub fn list(&self, path: &str) -> Result<Vec<String>, FwError> {
        match self.lookup(path)? {
            Node::Dir(children) => Ok(children.keys().cloned().collect()),
            _ => Err(FwError::NotAFile(path.to_string())),
        }
    }

    /// Whether `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.lookup(path).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn mkdir_install_read_write_list() {
        let mut t = DeviceFileTree::new();
        t.mkdir_all("/sys/cpa/cpa0/ldoms/ldom0/parameters").unwrap();
        t.install(
            "/sys/cpa/cpa0/ldoms/ldom0/parameters/waymask",
            Node::Data("0xffff".into()),
        )
        .unwrap();
        assert_eq!(
            t.read("/sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
                .unwrap(),
            "0xffff"
        );
        t.write("/sys/cpa/cpa0/ldoms/ldom0/parameters/waymask", "0xFF00")
            .unwrap();
        assert_eq!(
            t.read("/sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
                .unwrap(),
            "0xFF00"
        );
        assert_eq!(t.list("/sys/cpa/cpa0/ldoms").unwrap(), vec!["ldom0"]);
        assert!(t.exists("/sys/cpa"));
        assert!(!t.exists("/sys/nope"));
    }

    #[test]
    fn hook_files_route_through_closures() {
        let value = Arc::new(AtomicU64::new(42));
        let (r, w) = (value.clone(), value.clone());
        let mut t = DeviceFileTree::new();
        t.mkdir_all("/sys").unwrap();
        t.install(
            "/sys/cell",
            Node::Hook {
                read: Box::new(move || r.load(Ordering::SeqCst).to_string()),
                write: Some(Box::new(move |s| {
                    let v = s.trim().parse().map_err(|_| FwError::BadValue(s.into()))?;
                    w.store(v, Ordering::SeqCst);
                    Ok(())
                })),
            },
        )
        .unwrap();
        assert_eq!(t.read("/sys/cell").unwrap(), "42");
        t.write("/sys/cell", "7").unwrap();
        assert_eq!(value.load(Ordering::SeqCst), 7);
        assert!(matches!(
            t.write("/sys/cell", "xyz"),
            Err(FwError::BadValue(_))
        ));
    }

    #[test]
    fn readonly_hooks_reject_writes() {
        let mut t = DeviceFileTree::new();
        t.install(
            "/ident",
            Node::Hook {
                read: Box::new(|| "CACHE_CP".into()),
                write: None,
            },
        )
        .unwrap();
        assert!(matches!(t.write("/ident", "x"), Err(FwError::ReadOnly(_))));
    }

    #[test]
    fn path_errors() {
        let mut t = DeviceFileTree::new();
        assert!(t.read("/missing").is_err());
        assert!(t.read("relative").is_err());
        assert!(t.list("/missing").is_err());
        t.install("/file", Node::Data("x".into())).unwrap();
        assert!(t.list("/file").is_err());
        assert!(t.read("/").is_err()); // root is a directory
        assert!(t.mkdir_all("/file/sub").is_err());
        assert!(t.install("/no/parent", Node::Data("x".into())).is_err());
    }

    #[test]
    fn remove_subtrees() {
        let mut t = DeviceFileTree::new();
        t.mkdir_all("/a/b").unwrap();
        t.install("/a/b/c", Node::Data("x".into())).unwrap();
        t.remove("/a/b").unwrap();
        assert!(!t.exists("/a/b"));
        assert!(t.exists("/a"));
        assert!(t.remove("/a/b").is_err());
    }

    #[test]
    fn install_replaces() {
        let mut t = DeviceFileTree::new();
        t.install("/f", Node::Data("1".into())).unwrap();
        t.install("/f", Node::Data("2".into())).unwrap();
        assert_eq!(t.read("/f").unwrap(), "2");
    }
}
