//! Firmware errors.

use std::error::Error;
use std::fmt;

use pard_cp::CpError;

/// An error produced by the PRM firmware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FwError {
    /// No node at the given device-file-tree path.
    NoSuchPath(String),
    /// The path names a directory where a file was needed (or vice versa).
    NotAFile(String),
    /// The file does not support the attempted operation.
    ReadOnly(String),
    /// A value failed to parse as a number.
    BadValue(String),
    /// A control-plane access failed.
    Cp(CpError),
    /// No LDom with the given DS-id.
    NoSuchLDom(u16),
    /// Not enough machine memory to satisfy an allocation.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Largest contiguous free block.
        largest_free: u64,
    },
    /// All DS-ids are in use.
    OutOfDsIds,
    /// A `pardscript` program failed.
    Script {
        /// 1-based source line.
        line: usize,
        /// Description of the failure.
        message: String,
    },
    /// A shell command could not be parsed.
    BadCommand(String),
    /// The trigger file's content does not name a registered action.
    NoSuchAction(String),
}

impl fmt::Display for FwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FwError::NoSuchPath(p) => write!(f, "no such path: {p}"),
            FwError::NotAFile(p) => write!(f, "not a regular file: {p}"),
            FwError::ReadOnly(p) => write!(f, "read-only file: {p}"),
            FwError::BadValue(v) => write!(f, "cannot parse value {v:?}"),
            FwError::Cp(e) => write!(f, "control-plane error: {e}"),
            FwError::NoSuchLDom(ds) => write!(f, "no LDom with ds-id {ds}"),
            FwError::OutOfMemory {
                requested,
                largest_free,
            } => write!(
                f,
                "out of machine memory: requested {requested} bytes, largest free block {largest_free}"
            ),
            FwError::OutOfDsIds => write!(f, "no free DS-ids"),
            FwError::Script { line, message } => {
                write!(f, "script error at line {line}: {message}")
            }
            FwError::BadCommand(c) => write!(f, "cannot parse command {c:?}"),
            FwError::NoSuchAction(a) => write!(f, "no registered action {a:?}"),
        }
    }
}

impl Error for FwError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FwError::Cp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CpError> for FwError {
    fn from(e: CpError) -> Self {
        FwError::Cp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(FwError::NoSuchPath("/x".into()).to_string().contains("/x"));
        assert!(FwError::NoSuchLDom(7).to_string().contains('7'));
        let e = FwError::Script {
            line: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn cp_errors_convert_and_chain() {
        let e: FwError = CpError::BadCommand(9).into();
        assert!(e.source().is_some());
    }
}
