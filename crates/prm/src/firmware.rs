//! The Linux-like firmware running on the PRM.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use pard_cp::{
    CmpOp, CpAddr, CpCommand, CpHandle, CpInterrupt, CpType, CpaRegisterFile, InterruptLine,
    InterruptSink, TableSel, TriggerMode, REG_ADDR, REG_CMD, REG_DATA,
};
use pard_icn::{CoreCommand, DsId};
use pard_io::ApicRoutes;
use pard_sim::sync::Mutex;
use pard_sim::trace::{self, TraceCat, TraceVal};
use pard_sim::{ComponentId, Time};

use crate::alloc::MemAllocator;
use crate::error::FwError;
use crate::ldom::{LDomInfo, LDomSpec, Priority};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::script::{self, parse_num, Env, ScriptIo};
use crate::tree::{DeviceFileTree, Node};

/// Firmware configuration.
#[derive(Debug, Clone)]
pub struct FirmwareConfig {
    /// Machine memory available for LDom allocation.
    pub mem_capacity: u64,
    /// Maximum DS-ids (must match the control planes' table rows).
    pub max_ds: usize,
}

impl Default for FirmwareConfig {
    fn default() -> Self {
        FirmwareConfig {
            mem_capacity: 8 * 1024 * 1024 * 1024,
            max_ds: 256,
        }
    }
}

/// Context handed to an executing action.
#[derive(Debug, Clone, Copy)]
pub struct ActionEnv {
    /// CPA whose trigger fired.
    pub cpa: usize,
    /// DS-id the trigger watches.
    pub ds: DsId,
    /// Trigger-table slot.
    pub slot: usize,
    /// Firmware time of dispatch.
    pub now: Time,
}

/// Signature of a native trigger handler.
pub type NativeAction = Box<dyn FnMut(&mut Firmware, ActionEnv) + Send>;

/// A trigger action: the paper's "trigger handler".
pub enum Action {
    /// A [`pardscript`](crate::script) program (the paper's shell scripts).
    Script(String),
    /// A native hook (for harnesses and firmware-internal policies).
    Native(NativeAction),
}

impl std::fmt::Debug for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Script(_) => write!(f, "Action::Script"),
            Action::Native(_) => write!(f, "Action::Native"),
        }
    }
}

/// A shareable firmware handle (held by the [`Prm`](crate::Prm) component
/// and by experiment harnesses).
pub type FwHandle = Arc<Mutex<Firmware>>;

/// An escalation raised by this machine's PRM toward the fleet manager:
/// the top rung of the control-plane → PRM → fleet ladder. Machine-local
/// triggers that the firmware cannot satisfy with local actions (the LDom
/// is already at maximum local share) write
/// `REASON DS` into `/sys/fleet/escalate`, and the fleet manager drains
/// the queue via [`Firmware::take_escalations`] between epochs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Escalation {
    /// Firmware time when the escalation was raised.
    pub at: Time,
    /// The DS-id (tenant LDom) the escalation concerns.
    pub ds: u16,
    /// Free-form reason (e.g. `overload`).
    pub reason: String,
}

/// The PRM firmware. See the [crate docs](crate) for the big picture.
pub struct Firmware {
    cfg: FirmwareConfig,
    tree: DeviceFileTree,
    cpas: Vec<Arc<Mutex<CpaRegisterFile>>>,
    cp_types: Vec<CpType>,
    irq_line: InterruptLine,
    irq_sink: InterruptSink,
    actions: HashMap<String, Action>,
    /// `(cpa, slot)` → the ldom/action-id the slot was installed for.
    slot_owner: HashMap<(usize, usize), (u16, u64)>,
    next_slot: Vec<usize>,
    ldoms: BTreeMap<u16, LDomInfo>,
    next_ds: u16,
    mem: MemAllocator,
    apic_routes: Option<ApicRoutes>,
    cores: Vec<ComponentId>,
    pending_core_cmds: Vec<(ComponentId, CoreCommand)>,
    log: Vec<(Time, String)>,
    now: Time,
    metrics: MetricsRegistry,
    /// Escalations queued for the fleet manager. Shared with the
    /// `/sys/fleet/escalate` hook closure.
    escalations: Arc<Mutex<Vec<Escalation>>>,
    /// Firmware time mirrored for the escalate hook (closures cannot
    /// borrow `self.now`).
    esc_now: Arc<Mutex<Time>>,
}

impl Firmware {
    /// Boots the firmware.
    pub fn new(cfg: FirmwareConfig) -> Self {
        let (irq_line, irq_sink) = InterruptLine::channel();
        let mut tree = DeviceFileTree::new();
        tree.mkdir_all("/sys/cpa").expect("static path");
        tree.mkdir_all("/log").expect("static path");
        tree.mkdir_all("/sys/stats").expect("static path");
        let metrics = MetricsRegistry::new();
        let reg = metrics.clone();
        tree.install(
            "/sys/stats/snapshot",
            Node::Hook {
                read: Box::new(move || reg.snapshot_now().to_json()),
                write: None,
            },
        )
        .expect("static path");
        // The fleet escalation rung: scripts (or the operator) write
        // "REASON DS" here; the fleet manager drains the queue. Reading
        // the file shows the number of pending escalations.
        tree.mkdir_all("/sys/fleet").expect("static path");
        let escalations: Arc<Mutex<Vec<Escalation>>> = Arc::new(Mutex::new(Vec::new()));
        let esc_now = Arc::new(Mutex::new(Time::ZERO));
        let esc_read = escalations.clone();
        let esc_write = escalations.clone();
        let esc_clock = esc_now.clone();
        tree.install(
            "/sys/fleet/escalate",
            Node::Hook {
                read: Box::new(move || esc_read.lock().len().to_string()),
                write: Some(Box::new(move |s| {
                    let s = s.trim();
                    let (reason, ds) = s
                        .rsplit_once(char::is_whitespace)
                        .ok_or_else(|| FwError::BadCommand(format!("escalate: want 'REASON DS', got '{s}'")))?;
                    let ds = ds
                        .parse::<u16>()
                        .map_err(|_| FwError::BadCommand(format!("escalate: bad DS-id '{ds}'")))?;
                    esc_write.lock().push(Escalation {
                        at: *esc_clock.lock(),
                        ds,
                        reason: reason.trim().to_string(),
                    });
                    Ok(())
                })),
            },
        )
        .expect("static path");
        Firmware {
            metrics,
            tree,
            escalations,
            esc_now,
            cpas: Vec::new(),
            cp_types: Vec::new(),
            irq_line,
            irq_sink,
            actions: HashMap::new(),
            slot_owner: HashMap::new(),
            next_slot: Vec::new(),
            ldoms: BTreeMap::new(),
            next_ds: 0,
            mem: MemAllocator::new(cfg.mem_capacity),
            apic_routes: None,
            cores: Vec::new(),
            pending_core_cmds: Vec::new(),
            log: Vec::new(),
            now: Time::ZERO,
            cfg,
        }
    }

    /// Wraps the firmware in a shared handle.
    pub fn into_handle(self) -> FwHandle {
        Arc::new(Mutex::new(self))
    }

    // ------------------------------------------------------------ wiring

    /// Registers a control plane, mounting it as `/sys/cpa/cpaN`.
    /// Returns the CPA index.
    pub fn register_cpa(&mut self, cp: CpHandle) -> usize {
        let index = self.cpas.len();
        let cp_type = cp.lock().cp_type();
        cp.lock().attach(index, self.irq_line.clone());
        self.metrics.register(index, cp.clone());
        let regfile = Arc::new(Mutex::new(CpaRegisterFile::new(cp)));
        self.cpas.push(regfile.clone());
        self.cp_types.push(cp_type);
        self.next_slot.push(0);

        let base = format!("/sys/cpa/cpa{index}");
        self.tree.mkdir_all(&base).expect("parent exists");
        let rf = regfile.clone();
        self.tree
            .install(
                &format!("{base}/ident"),
                Node::Hook {
                    read: Box::new(move || {
                        let rf = rf.lock();
                        let lo = rf.read(pard_cp::REG_IDENT).unwrap_or(0).to_le_bytes();
                        let hi = rf.read(pard_cp::REG_IDENT_HIGH).unwrap_or(0).to_le_bytes();
                        let mut bytes = lo.to_vec();
                        bytes.extend_from_slice(&hi[..4]);
                        String::from_utf8_lossy(&bytes)
                            .trim_end_matches('\0')
                            .to_string()
                    }),
                    write: None,
                },
            )
            .expect("parent exists");
        let rf = regfile.clone();
        self.tree
            .install(
                &format!("{base}/type"),
                Node::Hook {
                    read: Box::new(move || {
                        let t = rf.lock().read(pard_cp::REG_TYPE).unwrap_or(0) as u8;
                        (t as char).to_string()
                    }),
                    write: None,
                },
            )
            .expect("parent exists");
        self.tree
            .mkdir_all(&format!("{base}/ldoms"))
            .expect("parent exists");

        // The policy tree: `/sys/policy/cpaN/program` reads the active
        // match-action program's source and accepts a new program as data
        // (rules separated by newlines or `;`). Writing `reset` clears the
        // installed program, reverting to the plane's built-in one. A bad
        // program is rejected with a typed error naming the offending
        // token; the previous program stays in force.
        let policy_base = format!("/sys/policy/cpa{index}");
        self.tree.mkdir_all(&policy_base).expect("parent exists");
        let rf_read = regfile.clone();
        let rf_write = regfile;
        self.tree
            .install(
                &format!("{policy_base}/program"),
                Node::Hook {
                    read: Box::new(move || {
                        rf_read.lock().plane().lock().policy_source().to_string()
                    }),
                    write: Some(Box::new(move |src| {
                        let rf = rf_write.lock();
                        let mut plane = rf.plane().lock();
                        if src.trim() == "reset" {
                            plane.clear_policy();
                        } else {
                            plane.install_policy(src)?;
                        }
                        Ok(())
                    })),
                },
            )
            .expect("parent exists");
        index
    }

    /// Wires the APIC route tables.
    pub fn set_apic_routes(&mut self, routes: ApicRoutes) {
        self.apic_routes = Some(routes);
    }

    /// Registers the server's cores (indexable from [`LDomSpec::cores`]).
    pub fn set_cores(&mut self, cores: Vec<ComponentId>) {
        self.cores = cores;
    }

    /// The CPA index of the first control plane of `cp_type`, if any.
    pub fn cpa_of_type(&self, cp_type: CpType) -> Option<usize> {
        self.cp_types.iter().position(|&t| t == cp_type)
    }

    // ------------------------------------------------------- file access

    /// `cat PATH`.
    ///
    /// # Errors
    ///
    /// Propagates device-file-tree errors.
    pub fn read(&mut self, path: &str) -> Result<String, FwError> {
        self.tree.read(path)
    }

    /// `echo VALUE > PATH`.
    ///
    /// # Errors
    ///
    /// Propagates device-file-tree errors.
    pub fn write(&mut self, path: &str, value: &str) -> Result<(), FwError> {
        self.tree.write(path, value)
    }

    /// `ls PATH`.
    ///
    /// # Errors
    ///
    /// Propagates device-file-tree errors.
    pub fn list(&self, path: &str) -> Result<Vec<String>, FwError> {
        self.tree.list(path)
    }

    /// The device file tree (tests, introspection).
    pub fn tree(&self) -> &DeviceFileTree {
        &self.tree
    }

    // ------------------------------------------------------------- ldoms

    /// Creates an LDom: assigns a DS-id, allocates machine memory,
    /// programs the control planes, routes interrupts, and mounts the
    /// per-LDom file subtrees (paper Fig. 3, operator view).
    ///
    /// # Errors
    ///
    /// Fails when DS-ids or memory are exhausted.
    pub fn create_ldom(&mut self, spec: LDomSpec) -> Result<DsId, FwError> {
        if usize::from(self.next_ds) >= self.cfg.max_ds {
            return Err(FwError::OutOfDsIds);
        }
        let ds = DsId::new(self.next_ds);
        let mem_base = self.mem.allocate(spec.mem_bytes)?;
        self.next_ds += 1;

        // Mount /sys/cpa/cpaN/ldoms/ldomD for every control plane.
        for cpa in 0..self.cpas.len() {
            self.mount_ldom_subtree(cpa, ds);
        }

        // Program the memory control plane: address mapping + priority.
        if let Some(mem_cpa) = self.cpa_of_type(CpType::Memory) {
            let base = format!("/sys/cpa/cpa{mem_cpa}/ldoms/ldom{}/parameters", ds.raw());
            self.write(&format!("{base}/addr_base"), &mem_base.to_string())?;
            self.write(&format!("{base}/addr_limit"), &spec.mem_bytes.to_string())?;
            let (prio, rowbuf) = match spec.priority {
                Priority::High => (1, 1),
                Priority::Normal => (0, 0),
            };
            self.write(&format!("{base}/priority"), &prio.to_string())?;
            self.write(&format!("{base}/rowbuf"), &rowbuf.to_string())?;
        }

        // Default cache policy: sharing without partitioning (Fig. 3).
        if let Some(cache_cpa) = self.cpa_of_type(CpType::Cache) {
            let path = format!(
                "/sys/cpa/cpa{cache_cpa}/ldoms/ldom{}/parameters/waymask",
                ds.raw()
            );
            self.write(&path, "0xFFFF")?;
        }

        // Disk quota, if requested.
        if let Some(pct) = spec.disk_quota_pct {
            if let Some(io_cpa) = self.cpa_of_type(CpType::Io) {
                let path = format!(
                    "/sys/cpa/cpa{io_cpa}/ldoms/ldom{}/parameters/bandwidth",
                    ds.raw()
                );
                self.write(&path, &pct.to_string())?;
            }
        }

        // v-NIC, if requested.
        if let Some(mac) = spec.mac {
            if let Some(nic_cpa) = self.cpa_of_type(CpType::Nic) {
                let base = format!("/sys/cpa/cpa{nic_cpa}/ldoms/ldom{}/parameters", ds.raw());
                self.write(
                    &format!("{base}/mac"),
                    &pard_io::mac_to_u64(mac).to_string(),
                )?;
                self.write(&format!("{base}/enabled"), "1")?;
            }
        }

        // Interrupt routing: the LDom's first core receives its interrupts.
        if let (Some(routes), Some(&first)) = (&self.apic_routes, spec.cores.first()) {
            if let Some(&core) = self.cores.get(first) {
                routes.set(ds, core);
            }
        }

        // Load the cores' tag registers.
        for &ci in &spec.cores {
            if let Some(&core) = self.cores.get(ci) {
                self.pending_core_cmds
                    .push((core, CoreCommand::SetTag(ds.raw())));
            }
        }

        self.log(format!(
            "created {} as ldom{} (cores {:?}, {} MiB at {:#x})",
            spec.name,
            ds.raw(),
            spec.cores,
            spec.mem_bytes >> 20,
            mem_base
        ));
        self.ldoms.insert(
            ds.raw(),
            LDomInfo {
                ds,
                mem_base,
                created_at: self.now,
                spec,
            },
        );
        Ok(ds)
    }

    /// Starts the workload on an LDom's cores.
    ///
    /// # Errors
    ///
    /// Fails for unknown DS-ids.
    pub fn launch_ldom(&mut self, ds: DsId) -> Result<(), FwError> {
        let info = self
            .ldoms
            .get(&ds.raw())
            .ok_or(FwError::NoSuchLDom(ds.raw()))?;
        let cores: Vec<ComponentId> = info
            .spec
            .cores
            .iter()
            .filter_map(|&ci| self.cores.get(ci).copied())
            .collect();
        for core in cores {
            self.pending_core_cmds.push((core, CoreCommand::Start));
        }
        self.log(format!("launched ldom{}", ds.raw()));
        Ok(())
    }

    /// Destroys an LDom: stops its cores, frees memory, resets its
    /// control-plane rows, and unmounts its subtrees.
    ///
    /// # Errors
    ///
    /// Fails for unknown DS-ids.
    pub fn destroy_ldom(&mut self, ds: DsId) -> Result<(), FwError> {
        let info = self
            .ldoms
            .remove(&ds.raw())
            .ok_or(FwError::NoSuchLDom(ds.raw()))?;
        for &ci in &info.spec.cores {
            if let Some(&core) = self.cores.get(ci) {
                self.pending_core_cmds.push((core, CoreCommand::Stop));
            }
        }
        self.mem.free(info.mem_base, info.spec.mem_bytes);
        if let Some(routes) = &self.apic_routes {
            routes.clear(ds);
        }
        for (cpa, regfile) in self.cpas.iter().enumerate() {
            let plane = regfile.lock().plane().clone();
            let _ = plane.lock().reset_ds(ds);
            let _ = self
                .tree
                .remove(&format!("/sys/cpa/cpa{cpa}/ldoms/ldom{}", ds.raw()));
        }
        self.slot_owner.retain(|_, &mut (d, _)| d != ds.raw());
        self.log(format!("destroyed ldom{}", ds.raw()));
        Ok(())
    }

    /// Information about a created LDom.
    pub fn ldom(&self, ds: DsId) -> Option<&LDomInfo> {
        self.ldoms.get(&ds.raw())
    }

    /// All LDoms in DS-id order.
    pub fn ldoms(&self) -> impl Iterator<Item = &LDomInfo> {
        self.ldoms.values()
    }

    fn mount_ldom_subtree(&mut self, cpa: usize, ds: DsId) {
        let regfile = self.cpas[cpa].clone();
        let plane = regfile.lock().plane().clone();
        let base = format!("/sys/cpa/cpa{cpa}/ldoms/ldom{}", ds.raw());
        self.tree
            .mkdir_all(&format!("{base}/parameters"))
            .expect("ldoms dir exists");
        self.tree
            .mkdir_all(&format!("{base}/statistics"))
            .expect("ldoms dir exists");
        self.tree
            .mkdir_all(&format!("{base}/triggers"))
            .expect("ldoms dir exists");

        let (param_cols, stat_cols) = {
            let plane = plane.lock();
            (
                plane
                    .params()
                    .columns()
                    .iter()
                    .map(|c| c.name)
                    .collect::<Vec<_>>(),
                plane
                    .stats()
                    .columns()
                    .iter()
                    .map(|c| c.name)
                    .collect::<Vec<_>>(),
            )
        };

        for (offset, name) in param_cols.into_iter().enumerate() {
            let path = format!("{base}/parameters/{name}");
            let rf_r = regfile.clone();
            let rf_w = regfile.clone();
            self.tree
                .install(
                    &path,
                    Node::Hook {
                        read: Box::new(move || {
                            cpa_access(&rf_r, ds, offset, TableSel::Parameter, None)
                                .map(|v| v.to_string())
                                .unwrap_or_default()
                        }),
                        write: Some(Box::new(move |s| {
                            let v = parse_num(s)?;
                            cpa_access(&rf_w, ds, offset, TableSel::Parameter, Some(v))?;
                            Ok(())
                        })),
                    },
                )
                .expect("parameters dir exists");
        }
        for (offset, name) in stat_cols.into_iter().enumerate() {
            let path = format!("{base}/statistics/{name}");
            let rf_r = regfile.clone();
            let rf_w = regfile.clone();
            self.tree
                .install(
                    &path,
                    Node::Hook {
                        read: Box::new(move || {
                            cpa_access(&rf_r, ds, offset, TableSel::Statistics, None)
                                .map(|v| v.to_string())
                                .unwrap_or_default()
                        }),
                        write: Some(Box::new(move |s| {
                            let v = parse_num(s)?;
                            cpa_access(&rf_w, ds, offset, TableSel::Statistics, Some(v))?;
                            Ok(())
                        })),
                    },
                )
                .expect("statistics dir exists");
        }
    }

    // ---------------------------------------------------------- triggers

    /// The `pardtrigger` command (paper Fig. 6, Example 1): installs a
    /// trigger condition into control plane `cpa`'s trigger table, watching
    /// `stats_column` of `ldom`, and creates the
    /// `/sys/cpa/cpaN/ldoms/ldomD/triggers/ACTION` leaf whose content names
    /// the action to run when the trigger fires.
    ///
    /// # Errors
    ///
    /// Fails for unknown CPAs, columns, or exhausted trigger slots.
    pub fn pardtrigger(
        &mut self,
        cpa: usize,
        ldom: DsId,
        action: u64,
        stats_column: &str,
        op: CmpOp,
        value: u64,
    ) -> Result<(), FwError> {
        self.pardtrigger_with_mode(cpa, ldom, action, stats_column, op, value, TriggerMode::Level, 0)
    }

    /// Like [`pardtrigger`](Self::pardtrigger), but with an explicit trigger
    /// mode. [`TriggerMode::DegradationPct`] installs a latency-degradation
    /// trigger: the condition compares the percent growth of a smoothed
    /// `stats_column` over a self-maintained healthy baseline (rather than
    /// the raw value), which is what the resilience path uses to detect
    /// fault-induced service degradation without hard-coding absolute
    /// thresholds. `floor` is the degradation mode's absolute minimum for
    /// the smoothed column before the slot may fire (`0` disables it;
    /// ignored by [`TriggerMode::Level`]): percent growth over a column
    /// idling near zero is noise, so SLO rules on latency columns should
    /// anchor the relative condition with a floor around the magnitude
    /// where latency starts to matter.
    ///
    /// # Errors
    ///
    /// Fails for unknown CPAs, columns, or exhausted trigger slots.
    #[allow(clippy::too_many_arguments)]
    pub fn pardtrigger_with_mode(
        &mut self,
        cpa: usize,
        ldom: DsId,
        action: u64,
        stats_column: &str,
        op: CmpOp,
        value: u64,
        mode: TriggerMode,
        floor: u64,
    ) -> Result<(), FwError> {
        let regfile = self
            .cpas
            .get(cpa)
            .cloned()
            .ok_or_else(|| FwError::NoSuchPath(format!("/dev/cpa{cpa}")))?;
        let column = {
            let rf = regfile.lock();
            let plane = rf.plane().lock();
            plane.stats().column_offset(stats_column)?
        };
        let slot = self.next_slot[cpa];
        self.next_slot[cpa] += 1;

        // Program the trigger row through the CPA, enabling it last.
        for (field, v) in [
            (0u16, u64::from(ldom.raw())),
            (1, column as u64),
            (2, op.encode()),
            (3, value),
            (6, mode.encode()),
            (8, floor),
            (4, 1),
        ] {
            let mut rf = regfile.lock();
            let addr = CpAddr::new(DsId::new(slot as u16), field, TableSel::Trigger);
            rf.write(REG_ADDR, addr.encode().into())?;
            rf.write(REG_DATA, v)?;
            rf.write(REG_CMD, CpCommand::Write.encode().into())?;
        }

        self.slot_owner.insert((cpa, slot), (ldom.raw(), action));
        let leaf = format!(
            "/sys/cpa/cpa{cpa}/ldoms/ldom{}/triggers/{action}",
            ldom.raw()
        );
        if !self.tree.exists(&leaf) {
            self.tree.install(&leaf, Node::Data(String::new()))?;
        }
        let cond = match mode {
            TriggerMode::Level => format!("{stats_column} {} {value}", op.mnemonic()),
            TriggerMode::DegradationPct => {
                format!("{stats_column} degraded {} {value}% (floor {floor})", op.mnemonic())
            }
        };
        self.log(format!(
            "pardtrigger: cpa{cpa} ldom{} action {action}: {cond} -> slot {slot}",
            ldom.raw(),
        ));
        Ok(())
    }

    /// Re-arms every trigger slot installed for (`cpa`, `ldom`) by
    /// clearing its latch through the CPA programming path. Triggers are
    /// level-latched (one interrupt per episode); a supervisor that has
    /// *reacted* to an escalation re-arms the slot so a persisting
    /// condition raises a fresh interrupt at the next window — this is how
    /// the fleet manager sees a second escalation (and moves from
    /// re-sharding to migration) when its first reaction was not enough.
    /// Returns the number of slots re-armed.
    ///
    /// # Errors
    ///
    /// Fails for unknown CPAs or CPA programming errors.
    pub fn rearm_triggers(&mut self, cpa: usize, ldom: DsId) -> Result<usize, FwError> {
        let regfile = self
            .cpas
            .get(cpa)
            .cloned()
            .ok_or_else(|| FwError::NoSuchPath(format!("/dev/cpa{cpa}")))?;
        let mut slots: Vec<usize> = self
            .slot_owner
            .iter()
            .filter(|&(&(c, _), &(ds, _))| c == cpa && ds == ldom.raw())
            .map(|(&(_, slot), _)| slot)
            .collect();
        slots.sort_unstable();
        for &slot in &slots {
            let mut rf = regfile.lock();
            let addr = CpAddr::new(DsId::new(slot as u16), 5, TableSel::Trigger);
            rf.write(REG_ADDR, addr.encode().into())?;
            rf.write(REG_DATA, 0)?;
            rf.write(REG_CMD, CpCommand::Write.encode().into())?;
        }
        Ok(slots.len())
    }

    /// Registers an action under a name (e.g. `"/cpa0_ldom0_t0.sh"`).
    pub fn register_action(&mut self, name: impl Into<String>, action: Action) {
        self.actions.insert(name.into(), action);
    }

    /// Services all pending control-plane interrupts, dispatching their
    /// bound actions. Returns the number handled.
    pub fn service_interrupts(&mut self) -> usize {
        let mut handled = 0;
        while let Some(irq) = self.irq_sink.try_recv() {
            handled += 1;
            if let Err(e) = self.dispatch(irq) {
                let msg = format!("interrupt dispatch failed: {e}");
                self.log(msg);
            }
        }
        handled
    }

    fn dispatch(&mut self, irq: CpInterrupt) -> Result<(), FwError> {
        let &(ds_raw, action_id) = self
            .slot_owner
            .get(&(irq.cpa, irq.slot))
            .ok_or_else(|| FwError::NoSuchAction(format!("cpa{} slot {}", irq.cpa, irq.slot)))?;
        if trace::enabled(TraceCat::Prm) {
            trace::emit(
                TraceCat::Prm,
                self.now,
                ds_raw,
                "dispatch",
                &[
                    ("cpa", TraceVal::U(irq.cpa as u64)),
                    ("slot", TraceVal::U(irq.slot as u64)),
                ],
            );
        }
        let leaf = format!(
            "/sys/cpa/cpa{}/ldoms/ldom{ds_raw}/triggers/{action_id}",
            irq.cpa
        );
        let action_name = self.tree.read(&leaf)?;
        if action_name.is_empty() {
            return Err(FwError::NoSuchAction(leaf));
        }
        let env = ActionEnv {
            cpa: irq.cpa,
            ds: DsId::new(ds_raw),
            slot: irq.slot,
            now: self.now,
        };
        self.run_action(&action_name, env)
    }

    /// Runs a registered action by name.
    ///
    /// # Errors
    ///
    /// Fails if the action is unknown or its script errors.
    pub fn run_action(&mut self, name: &str, env: ActionEnv) -> Result<(), FwError> {
        let mut action = self
            .actions
            .remove(name)
            .ok_or_else(|| FwError::NoSuchAction(name.to_string()))?;
        let result = match &mut action {
            Action::Script(src) => {
                let src = src.clone();
                let mut senv = Env::new();
                senv.set("DS", env.ds.raw().to_string());
                senv.set("CPA", env.cpa.to_string());
                senv.set("SLOT", env.slot.to_string());
                script::run(&src, &mut senv, self)
            }
            Action::Native(f) => {
                f(self, env);
                Ok(())
            }
        };
        self.actions.insert(name.to_string(), action);
        result
    }

    // ------------------------------------------------------------- shell

    /// A tiny operator shell: `cat`, `echo … > …`, `ls`, `pardtrigger`,
    /// `pardpolicy`, `logread`.
    ///
    /// # Errors
    ///
    /// Returns parse or execution errors; output is the command's stdout.
    pub fn shell(&mut self, line: &str) -> Result<String, FwError> {
        let line = line.trim();
        if let Some(path) = line.strip_prefix("cat ") {
            return self.read(path.trim());
        }
        if let Some(rest) = line.strip_prefix("echo ") {
            let (value, path) = rest
                .rsplit_once('>')
                .ok_or_else(|| FwError::BadCommand(line.to_string()))?;
            let value = value.trim().trim_matches('"');
            self.write(path.trim(), value)?;
            return Ok(String::new());
        }
        if let Some(path) = line.strip_prefix("ls ") {
            return Ok(self.list(path.trim())?.join("\n"));
        }
        if line == "logread" {
            return Ok(self
                .log
                .iter()
                .map(|(t, m)| format!("[{t}] {m}"))
                .collect::<Vec<_>>()
                .join("\n"));
        }
        if let Some(rest) = line.strip_prefix("pardtrigger ") {
            return self.shell_pardtrigger(rest);
        }
        if let Some(rest) = line.strip_prefix("pardpolicy ") {
            return self.shell_pardpolicy(rest);
        }
        Err(FwError::BadCommand(line.to_string()))
    }

    fn shell_pardpolicy(&mut self, rest: &str) -> Result<String, FwError> {
        // pardpolicy /dev/cpaN show
        // pardpolicy /dev/cpaN reset
        // pardpolicy /dev/cpaN install PROGRAM   (rules separated by `;`)
        let rest = rest.trim();
        let (dev, verb_and_args) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| FwError::BadCommand(rest.to_string()))?;
        let cpa = dev
            .strip_prefix("/dev/cpa")
            .and_then(|n| n.parse::<usize>().ok())
            .ok_or_else(|| FwError::BadCommand(dev.to_string()))?;
        let path = format!("/sys/policy/cpa{cpa}/program");
        let verb_and_args = verb_and_args.trim();
        match verb_and_args {
            "show" => self.read(&path),
            "reset" => {
                self.write(&path, "reset")?;
                Ok(String::new())
            }
            _ => match verb_and_args.split_once(char::is_whitespace) {
                Some(("install", program)) => {
                    self.write(&path, program.trim())?;
                    Ok(String::new())
                }
                _ => Err(FwError::BadCommand(verb_and_args.to_string())),
            },
        }
    }

    fn shell_pardtrigger(&mut self, rest: &str) -> Result<String, FwError> {
        // pardtrigger /dev/cpa0 -ldom=0 -action=0 -stats=miss_rate -cond=gt,30
        // Degradation form: -cond=degr,50 fires when the watched column has
        // degraded >= 50% over its healthy baseline; -cond=degr,50,100
        // additionally requires the smoothed column to reach 100 (the
        // absolute floor that keeps near-idle columns from firing).
        let mut cpa = None;
        let mut ldom = None;
        let mut action = None;
        let mut stats = None;
        let mut cond = None;
        for tok in rest.split_whitespace() {
            if let Some(dev) = tok.strip_prefix("/dev/cpa") {
                cpa = Some(
                    dev.parse::<usize>()
                        .map_err(|_| FwError::BadCommand(tok.to_string()))?,
                );
            } else if let Some(v) = tok.strip_prefix("-ldom=") {
                ldom = Some(parse_num(v)? as u16);
            } else if let Some(v) = tok.strip_prefix("-action=") {
                action = Some(parse_num(v)?);
            } else if let Some(v) = tok.strip_prefix("-stats=") {
                stats = Some(v.to_string());
            } else if let Some(v) = tok.strip_prefix("-cond=") {
                let (op, val) = v
                    .split_once(',')
                    .ok_or_else(|| FwError::BadCommand(tok.to_string()))?;
                cond = Some(if op == "degr" {
                    let (pct, floor) = match val.split_once(',') {
                        Some((pct, floor)) => (parse_num(pct)?, parse_num(floor)?),
                        None => (parse_num(val)?, 0),
                    };
                    (CmpOp::Ge, pct, TriggerMode::DegradationPct, floor)
                } else {
                    (CmpOp::from_mnemonic(op)?, parse_num(val)?, TriggerMode::Level, 0)
                });
            } else {
                return Err(FwError::BadCommand(tok.to_string()));
            }
        }
        let (Some(cpa), Some(ldom), Some(action), Some(stats), Some((op, value, mode, floor))) =
            (cpa, ldom, action, stats, cond)
        else {
            return Err(FwError::BadCommand(rest.to_string()));
        };
        self.pardtrigger_with_mode(cpa, DsId::new(ldom), action, &stats, op, value, mode, floor)?;
        Ok(String::new())
    }

    // ----------------------------------------------------------- service

    /// Updates the firmware's notion of time (called by the PRM tick).
    pub fn set_now(&mut self, now: Time) {
        self.now = now;
        self.metrics.set_now(now);
        *self.esc_now.lock() = now;
    }

    /// Raises a fleet escalation natively (the script path writes
    /// `/sys/fleet/escalate` instead; both land in the same queue).
    pub fn escalate(&mut self, ds: u16, reason: impl Into<String>) {
        let reason = reason.into();
        self.log(format!("escalate: ldom{ds} {reason}"));
        self.escalations.lock().push(Escalation {
            at: self.now,
            ds,
            reason,
        });
    }

    /// Escalations queued and not yet taken.
    pub fn pending_escalations(&self) -> usize {
        self.escalations.lock().len()
    }

    /// Drains the escalation queue (the fleet manager calls this between
    /// epochs).
    pub fn take_escalations(&mut self) -> Vec<Escalation> {
        std::mem::take(&mut *self.escalations.lock())
    }

    /// A machine-wide per-DS-id statistics snapshot, stamped with the
    /// firmware's current time. Also readable as JSON through the device
    /// file tree at `/sys/stats/snapshot`.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.now)
    }

    /// A clone of the metrics registry (for exit-time dumps that outlive
    /// the firmware lock).
    pub fn metrics_registry(&self) -> MetricsRegistry {
        self.metrics.clone()
    }

    /// Appends a log line.
    pub fn log(&mut self, message: impl Into<String>) {
        self.log.push((self.now, message.into()));
    }

    /// The firmware log.
    pub fn log_entries(&self) -> &[(Time, String)] {
        &self.log
    }

    /// Takes the queued core-control commands (drained by the PRM tick).
    pub fn take_core_cmds(&mut self) -> Vec<(ComponentId, CoreCommand)> {
        std::mem::take(&mut self.pending_core_cmds)
    }
}

impl ScriptIo for Firmware {
    fn cat(&mut self, path: &str) -> Result<String, FwError> {
        self.read(path)
    }
    fn echo(&mut self, path: &str, value: &str) -> Result<(), FwError> {
        // Scripts may log by echoing into /log/*; create those on demand.
        if path.starts_with("/log/") && !self.tree.exists(path) {
            self.tree.install(path, Node::Data(String::new()))?;
        }
        self.write(path, value)
    }
    fn log(&mut self, message: &str) {
        Firmware::log(self, message.to_string());
    }
}

fn cpa_access(
    regfile: &Arc<Mutex<CpaRegisterFile>>,
    ds: DsId,
    offset: usize,
    table: TableSel,
    write: Option<u64>,
) -> Result<u64, FwError> {
    let mut rf = regfile.lock();
    let addr = CpAddr::new(ds, offset as u16, table);
    rf.write(REG_ADDR, addr.encode().into())?;
    match write {
        Some(v) => {
            rf.write(REG_DATA, v)?;
            rf.write(REG_CMD, CpCommand::Write.encode().into())?;
            Ok(v)
        }
        None => {
            rf.write(REG_CMD, CpCommand::Read.encode().into())?;
            Ok(rf.read(REG_DATA)?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_cache::llc_control_plane;
    use pard_cp::shared;
    use pard_dram::mem_control_plane;

    fn fw_with_planes() -> (Firmware, CpHandle, CpHandle) {
        let mut fw = Firmware::new(FirmwareConfig {
            mem_capacity: 1 << 30,
            max_ds: 16,
        });
        let cache = shared(llc_control_plane(16, 8));
        let mem = shared(mem_control_plane(16, 8));
        fw.register_cpa(cache.clone()); // cpa0
        fw.register_cpa(mem.clone()); // cpa1
        (fw, cache, mem)
    }

    #[test]
    fn cpa_mounts_expose_ident_and_type() {
        let (mut fw, _, _) = fw_with_planes();
        assert_eq!(fw.read("/sys/cpa/cpa0/ident").unwrap(), "CACHE_CP");
        assert_eq!(fw.read("/sys/cpa/cpa0/type").unwrap(), "C");
        assert_eq!(fw.read("/sys/cpa/cpa1/ident").unwrap(), "MEMORY_CP");
        assert_eq!(fw.read("/sys/cpa/cpa1/type").unwrap(), "M");
        assert_eq!(fw.cpa_of_type(CpType::Cache), Some(0));
        assert_eq!(fw.cpa_of_type(CpType::Memory), Some(1));
        assert_eq!(fw.cpa_of_type(CpType::Nic), None);
    }

    #[test]
    fn policy_tree_installs_reads_and_resets_programs() {
        let (mut fw, _, mem) = fw_with_planes();
        // The memory plane boots with no policy (the controller installs
        // its built-in default when constructed); install one as data.
        fw.write(
            "/sys/policy/cpa1/program",
            "when all do rank wfq(param.wfq_weight)",
        )
        .unwrap();
        assert!(mem.lock().policy_installed());
        assert_eq!(
            fw.read("/sys/policy/cpa1/program").unwrap(),
            "when all do rank wfq(param.wfq_weight)"
        );

        // A bad program is a typed error naming the offending token, and
        // the previous program stays in force.
        let err = fw
            .write("/sys/policy/cpa1/program", "when all do rnak 1")
            .unwrap_err();
        match err {
            FwError::Cp(e) => assert!(e.to_string().contains("rnak"), "got: {e}"),
            other => panic!("expected a control-plane error, got {other}"),
        }
        assert!(mem.lock().policy_installed());

        fw.write("/sys/policy/cpa1/program", "reset").unwrap();
        assert!(!mem.lock().policy_installed());
    }

    #[test]
    fn pardpolicy_shell_verb_round_trips() {
        let (mut fw, _, mem) = fw_with_planes();
        fw.shell("pardpolicy /dev/cpa1 install when ds == 1 do urgent ; when all do rank 1")
            .unwrap();
        assert!(mem.lock().policy_installed());
        let shown = fw.shell("pardpolicy /dev/cpa1 show").unwrap();
        assert!(shown.contains("urgent"), "got: {shown}");
        fw.shell("pardpolicy /dev/cpa1 reset").unwrap();
        assert!(!mem.lock().policy_installed());

        // Malformed invocations are typed parse errors, never panics.
        assert!(matches!(
            fw.shell("pardpolicy /dev/cpa1"),
            Err(FwError::BadCommand(_))
        ));
        assert!(matches!(
            fw.shell("pardpolicy /dev/zero show"),
            Err(FwError::BadCommand(_))
        ));
        assert!(matches!(
            fw.shell("pardpolicy /dev/cpa1 frobnicate"),
            Err(FwError::BadCommand(_))
        ));
        assert!(matches!(
            fw.shell("pardpolicy /dev/cpa1 install when all do rnak 1"),
            Err(FwError::Cp(_))
        ));
    }

    #[test]
    fn create_ldom_programs_planes_and_mounts_tree() {
        let (mut fw, cache, mem) = fw_with_planes();
        let ds = fw
            .create_ldom(LDomSpec::new("test", vec![0], 256 << 20).high_priority())
            .unwrap();
        assert_eq!(ds, DsId::new(0));

        // Tree mounted.
        assert!(fw
            .tree()
            .exists("/sys/cpa/cpa0/ldoms/ldom0/parameters/waymask"));
        assert!(fw
            .tree()
            .exists("/sys/cpa/cpa1/ldoms/ldom0/statistics/avg_qlat"));

        // Planes programmed.
        assert_eq!(cache.lock().param(ds, "waymask").unwrap(), 0xFFFF);
        assert_eq!(mem.lock().param(ds, "addr_limit").unwrap(), 256 << 20);
        assert_eq!(mem.lock().param(ds, "priority").unwrap(), 1);
        assert_eq!(mem.lock().param(ds, "rowbuf").unwrap(), 1);

        // Second LDom gets disjoint memory.
        let ds2 = fw
            .create_ldom(LDomSpec::new("t2", vec![1], 256 << 20))
            .unwrap();
        let b0 = fw.ldom(ds).unwrap().mem_base;
        let b1 = fw.ldom(ds2).unwrap().mem_base;
        assert_ne!(b0, b1);
        assert_eq!(mem.lock().param(ds2, "priority").unwrap(), 0);
    }

    #[test]
    fn file_writes_reach_the_parameter_table_via_cpa() {
        let (mut fw, cache, _) = fw_with_planes();
        let ds = fw
            .create_ldom(LDomSpec::new("t", vec![0], 1 << 20))
            .unwrap();
        fw.write("/sys/cpa/cpa0/ldoms/ldom0/parameters/waymask", "0xFF00")
            .unwrap();
        assert_eq!(cache.lock().param(ds, "waymask").unwrap(), 0xFF00);
        assert_eq!(
            fw.read("/sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
                .unwrap(),
            0xFF00u64.to_string()
        );
    }

    #[test]
    fn statistics_are_readable_through_the_tree() {
        let (mut fw, cache, _) = fw_with_planes();
        let ds = fw
            .create_ldom(LDomSpec::new("t", vec![0], 1 << 20))
            .unwrap();
        let stats = cache.lock().stats_handle();
        stats.set(ds, stats.key("miss_rate").unwrap(), 42).unwrap();
        assert_eq!(
            fw.read("/sys/cpa/cpa0/ldoms/ldom0/statistics/miss_rate")
                .unwrap(),
            "42"
        );
    }

    #[test]
    fn trigger_fires_script_action_that_reprograms_the_cache() {
        let (mut fw, cache, _) = fw_with_planes();
        let ds = fw
            .create_ldom(LDomSpec::new("mc", vec![0], 1 << 20))
            .unwrap();

        // The Figure 9 policy: LLC.MissRate > 30% => grow to half the LLC.
        fw.pardtrigger(0, ds, 0, "miss_rate", CmpOp::Gt, 30)
            .unwrap();
        fw.register_action(
            "/cpa0_ldom0_t0.sh",
            Action::Script(
                r#"
log "trigger: growing ldom $DS cache partition"
echo 0xFF00 > /sys/cpa/cpa$CPA/ldoms/ldom$DS/parameters/waymask
"#
                .to_string(),
            ),
        );
        fw.write("/sys/cpa/cpa0/ldoms/ldom0/triggers/0", "/cpa0_ldom0_t0.sh")
            .unwrap();

        // Simulate the LLC hitting 45% miss rate at a window boundary.
        {
            let mut cp = cache.lock();
            let key = cp.stats().key("miss_rate").unwrap();
            cp.stats().set(ds, key, 45).unwrap();
            cp.evaluate_triggers(ds, Time::from_ms(5));
        }
        assert_eq!(fw.service_interrupts(), 1);
        assert_eq!(cache.lock().param(ds, "waymask").unwrap(), 0xFF00);
        assert!(fw
            .log_entries()
            .iter()
            .any(|(_, m)| m.contains("growing ldom 0")));
    }

    #[test]
    fn native_actions_run() {
        let (mut fw, cache, _) = fw_with_planes();
        let ds = fw
            .create_ldom(LDomSpec::new("t", vec![0], 1 << 20))
            .unwrap();
        fw.pardtrigger(0, ds, 7, "miss_rate", CmpOp::Ge, 1).unwrap();
        fw.register_action(
            "grow",
            Action::Native(Box::new(|fw, env| {
                let path = format!(
                    "/sys/cpa/cpa{}/ldoms/ldom{}/parameters/waymask",
                    env.cpa,
                    env.ds.raw()
                );
                fw.write(&path, "0x000F").unwrap();
            })),
        );
        fw.write("/sys/cpa/cpa0/ldoms/ldom0/triggers/7", "grow")
            .unwrap();
        {
            let mut cp = cache.lock();
            let key = cp.stats().key("miss_rate").unwrap();
            cp.stats().set(ds, key, 10).unwrap();
            cp.evaluate_triggers(ds, Time::ZERO);
        }
        fw.service_interrupts();
        assert_eq!(cache.lock().param(ds, "waymask").unwrap(), 0x000F);
    }

    #[test]
    fn shell_commands_work() {
        let (mut fw, cache, _) = fw_with_planes();
        let ds = fw
            .create_ldom(LDomSpec::new("t", vec![0], 1 << 20))
            .unwrap();
        fw.shell("echo 0x00FF > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
            .unwrap();
        assert_eq!(cache.lock().param(ds, "waymask").unwrap(), 0x00FF);
        assert_eq!(
            fw.shell("cat /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
                .unwrap(),
            255.to_string()
        );
        let ls = fw.shell("ls /sys/cpa/cpa0/ldoms/ldom0").unwrap();
        assert_eq!(ls, "parameters\nstatistics\ntriggers");
        fw.shell("pardtrigger /dev/cpa0 -ldom=0 -action=0 -stats=miss_rate -cond=gt,30")
            .unwrap();
        assert!(cache.lock().triggers().get(0).is_some());
        assert!(fw.shell("logread").unwrap().contains("pardtrigger"));
        assert!(fw.shell("rm -rf /").is_err());
    }

    #[test]
    fn destroy_ldom_cleans_up() {
        let (mut fw, cache, _) = fw_with_planes();
        let ds = fw
            .create_ldom(LDomSpec::new("t", vec![0], 256 << 20))
            .unwrap();
        fw.write("/sys/cpa/cpa0/ldoms/ldom0/parameters/waymask", "0x1")
            .unwrap();
        fw.destroy_ldom(ds).unwrap();
        assert!(!fw.tree().exists("/sys/cpa/cpa0/ldoms/ldom0"));
        assert_eq!(cache.lock().param(ds, "waymask").unwrap(), 0xFFFF);
        assert!(fw.destroy_ldom(ds).is_err());
        // Memory was freed: a full-capacity LDom fits again.
        fw.create_ldom(LDomSpec::new("big", vec![0], 1 << 30))
            .unwrap();
    }

    #[test]
    fn metrics_snapshot_walks_every_plane_and_mounts_as_a_file() {
        let (mut fw, cache, mem) = fw_with_planes();
        let ds = fw
            .create_ldom(LDomSpec::new("t", vec![0], 1 << 20))
            .unwrap();
        let cstats = cache.lock().stats_handle();
        cstats.set(ds, cstats.key("miss_rate").unwrap(), 33).unwrap();
        let mstats = mem.lock().stats_handle();
        mstats.set(ds, mstats.key("bandwidth").unwrap(), 1200).unwrap();
        fw.set_now(Time::from_us(7));

        let snap = fw.metrics_snapshot();
        assert_eq!(snap.taken_at, Time::from_us(7));
        assert_eq!(snap.planes.len(), 2);
        assert_eq!(snap.column_total("CACHE_CP", "miss_rate"), 33);
        assert_eq!(snap.column_total("MEMORY_CP", "bandwidth"), 1200);

        // The same data is readable through the device file tree.
        let json = fw.read("/sys/stats/snapshot").unwrap();
        assert!(json.contains("\"ident\": \"CACHE_CP\""));
        assert!(json.contains("\"ident\": \"MEMORY_CP\""));
        assert!(json.contains("\"taken_at_ns\": 7000"));
    }

    #[test]
    fn escalations_flow_from_trigger_script_to_fleet_queue() {
        let (mut fw, cache, _) = fw_with_planes();
        fw.set_now(Time::from_us(3));
        let ds = fw
            .create_ldom(LDomSpec::new("tenant", vec![0], 1 << 20))
            .unwrap();

        // A machine-local trigger whose action escalates to the fleet.
        fw.pardtrigger(0, ds, 0, "miss_rate", CmpOp::Gt, 30).unwrap();
        fw.register_action(
            "/escalate_t0.sh",
            Action::Script("echo overload $DS > /sys/fleet/escalate\n".to_string()),
        );
        fw.write("/sys/cpa/cpa0/ldoms/ldom0/triggers/0", "/escalate_t0.sh")
            .unwrap();
        {
            let mut cp = cache.lock();
            let key = cp.stats().key("miss_rate").unwrap();
            cp.stats().set(ds, key, 45).unwrap();
            cp.evaluate_triggers(ds, Time::from_ms(1));
        }
        assert_eq!(fw.service_interrupts(), 1);
        assert_eq!(fw.read("/sys/fleet/escalate").unwrap(), "1");

        // The native path lands in the same queue.
        fw.escalate(7, "slo_breach");
        let taken = fw.take_escalations();
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].ds, 0);
        assert_eq!(taken[0].reason, "overload");
        assert_eq!(taken[0].at, Time::from_us(3));
        assert_eq!(taken[1].ds, 7);
        assert!(fw.take_escalations().is_empty());
        assert_eq!(fw.pending_escalations(), 0);

        // Malformed writes are typed errors, not silent drops.
        assert!(matches!(
            fw.write("/sys/fleet/escalate", "no-ds-here"),
            Err(FwError::BadCommand(_))
        ));
        assert!(matches!(
            fw.write("/sys/fleet/escalate", "overload banana"),
            Err(FwError::BadCommand(_))
        ));
    }

    #[test]
    fn ds_ids_are_sequential_and_bounded() {
        let mut fw = Firmware::new(FirmwareConfig {
            mem_capacity: 1 << 30,
            max_ds: 2,
        });
        let a = fw.create_ldom(LDomSpec::new("a", vec![], 1)).unwrap();
        let b = fw.create_ldom(LDomSpec::new("b", vec![], 1)).unwrap();
        assert_eq!((a.raw(), b.raw()), (0, 1));
        assert!(matches!(
            fw.create_ldom(LDomSpec::new("c", vec![], 1)),
            Err(FwError::OutOfDsIds)
        ));
    }
}
