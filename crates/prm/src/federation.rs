//! Fleet **federation actions** — the scripts behind tenant migration.
//!
//! The rack-scale layer (`pard-fleet`) federates per-machine PRMs: a
//! machine-local trigger escalates control-plane → PRM → fleet by writing
//! `/sys/fleet/escalate` (see [`Firmware::take_escalations`]), and the
//! fleet manager reacts by re-sharding a tenant's traffic or migrating its
//! LDom to another machine. The *mechanism* of both reactions is the same
//! as the recovery playbook ([`crate::recovery`]): pardscript programs
//! manipulating the target machine's `/sys` device-file tree — everything
//! the fleet manager does to a machine is something an operator at that
//! machine's PRM console could type by hand.
//!
//! * [`escalate_action`] — the script a machine-local trigger binds to:
//!   report the overloaded LDom up to the fleet,
//! * [`admit`] — program a (re-)registered DS-id's service classes on the
//!   *target* machine's control planes (LLC ways on `cpa0`, DRAM
//!   priority/row-buffer policy on `cpa1`, IDE bandwidth on `cpa3`),
//! * [`drain`] — demote a departing DS-id on the *source* machine back to
//!   best-effort defaults so its residual traffic cannot crowd the
//!   tenants that stay.
//!
//! [`Firmware::take_escalations`]: crate::Firmware::take_escalations

use crate::firmware::{Action, Firmware};

/// Service classes the fleet manager programs when admitting a tenant
/// onto a machine.
#[derive(Debug, Clone, Copy)]
pub struct AdmitClasses {
    /// LLC way mask on `cpa0`.
    pub waymask: u64,
    /// DRAM admission priority on `cpa1` (1 = bypass the admission gate).
    pub priority: u64,
    /// DRAM row-buffer policy on `cpa1` (1 = reserved).
    pub rowbuf: u64,
    /// IDE proportional-share bandwidth on `cpa3`, if the machine has one.
    pub ide_bandwidth: Option<u64>,
}

impl AdmitClasses {
    /// The guaranteed-tier classes: half the LLC ways, prioritized DRAM.
    #[must_use]
    pub fn guaranteed() -> Self {
        AdmitClasses {
            waymask: 0xFF00,
            priority: 1,
            rowbuf: 1,
            ide_bandwidth: None,
        }
    }

    /// The best-effort classes: fully shared LLC, default DRAM service.
    #[must_use]
    pub fn best_effort() -> Self {
        AdmitClasses {
            waymask: 0xFFFF,
            priority: 0,
            rowbuf: 0,
            ide_bandwidth: None,
        }
    }
}

/// Pardscript: escalate the dispatching LDom to the fleet manager with
/// `reason`. Bind this to a machine-local trigger (e.g. memory `avg_qlat`
/// above the SLO knee) so the control-plane → PRM → fleet ladder is
/// exactly the paper's "trigger ⇒ action" chain with one more rung.
#[must_use]
pub fn escalate_action(reason: &str) -> String {
    format!(
        r#"log "fleet: ldom$DS escalating ({reason}, cpa$CPA slot $SLOT)"
echo {reason} $DS > /sys/fleet/escalate
"#
    )
}

/// Pardscript: program LDom `ldom`'s service classes on this machine's
/// control planes — the admission half of a migration or re-shard. The
/// DS-id is passed explicitly (not `$DS`) because admission runs on the
/// *target* machine, where no trigger fired.
#[must_use]
pub fn admit(ldom: u16, classes: AdmitClasses) -> String {
    let AdmitClasses {
        waymask,
        priority,
        rowbuf,
        ide_bandwidth,
    } = classes;
    let mut s = format!(
        r#"echo {waymask:#x} > /sys/cpa/cpa0/ldoms/ldom{ldom}/parameters/waymask
echo {priority} > /sys/cpa/cpa1/ldoms/ldom{ldom}/parameters/priority
echo {rowbuf} > /sys/cpa/cpa1/ldoms/ldom{ldom}/parameters/rowbuf
log "fleet: admitted ldom{ldom} (waymask {waymask:#x}, prio {priority})"
"#
    );
    if let Some(bw) = ide_bandwidth {
        s.push_str(&format!(
            "echo {bw} > /sys/cpa/cpa3/ldoms/ldom{ldom}/parameters/bandwidth\n"
        ));
    }
    s
}

/// Pardscript: demote LDom `ldom` to best-effort defaults on this machine
/// — the drain half of a migration, run on the *source* machine.
#[must_use]
pub fn drain(ldom: u16) -> String {
    format!(
        r#"echo 0xFFFF > /sys/cpa/cpa0/ldoms/ldom{ldom}/parameters/waymask
echo 0 > /sys/cpa/cpa1/ldoms/ldom{ldom}/parameters/priority
echo 0 > /sys/cpa/cpa1/ldoms/ldom{ldom}/parameters/rowbuf
log "fleet: drained ldom{ldom} to best-effort"
"#
    )
}

/// Registers [`escalate_action`] under `name` so trigger leaves can bind
/// to it.
pub fn install_escalate(fw: &mut Firmware, name: &str, reason: &str) {
    fw.register_action(name, Action::Script(escalate_action(reason)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federation_scripts_have_expected_shape() {
        let e = escalate_action("overload");
        assert!(e.contains("echo overload $DS > /sys/fleet/escalate"));

        let a = admit(5, AdmitClasses::guaranteed());
        assert!(a.contains("echo 0xff00 > /sys/cpa/cpa0/ldoms/ldom5/parameters/waymask"));
        assert!(a.contains("echo 1 > /sys/cpa/cpa1/ldoms/ldom5/parameters/priority"));
        assert!(!a.contains("cpa3"), "no IDE quota unless requested");

        let with_ide = admit(
            2,
            AdmitClasses {
                ide_bandwidth: Some(70),
                ..AdmitClasses::guaranteed()
            },
        );
        assert!(with_ide.contains("echo 70 > /sys/cpa/cpa3/ldoms/ldom2/parameters/bandwidth"));

        let d = drain(5);
        assert!(d.contains("echo 0xFFFF > /sys/cpa/cpa0/ldoms/ldom5/parameters/waymask"));
        assert!(d.contains("echo 0 > /sys/cpa/cpa1/ldoms/ldom5/parameters/priority"));
    }
}
