//! The unified per-DS-id metrics registry.
//!
//! Every control plane registered with the firmware is also registered
//! here; [`MetricsRegistry::snapshot`] walks each plane's statistics
//! cells and collects the non-zero rows into a [`MetricsSnapshot`] — the
//! machine-wide per-DS-id observability view the paper's management
//! interface implies but scatters across `/sys/cpa/cpaN/...` leaves.
//! The firmware exports the snapshot through the device file tree as
//! `/sys/stats/snapshot` (a JSON document), and experiment harnesses can
//! dump it at run end via `PARD_METRICS`.
//!
//! Registration caches each plane's immutable metadata (ident, type,
//! column schema) plus a [`StatsHandle`], so taking a snapshot never
//! locks a `CpHandle`: every row is one acquire-consistent
//! [`snapshot_row`](pard_cp::StatsCells::snapshot_row) over the same
//! lock-free cells the data path records into.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pard_cp::{CpHandle, StatsHandle};
use pard_icn::DsId;
use pard_sim::sync::Mutex;
use pard_sim::trace::TraceVal;
use pard_sim::{audit, Time};

/// Register-time cache of one plane's snapshot inputs.
struct RegisteredPlane {
    cpa: usize,
    ident: String,
    cp_type: char,
    columns: Vec<&'static str>,
    stats: StatsHandle,
}

/// A shareable registry of every control plane on the machine.
///
/// Cloning is cheap (the plane list is behind an `Arc`); the firmware
/// holds one clone and the `/sys/stats/snapshot` file hook another.
#[derive(Clone)]
pub struct MetricsRegistry {
    planes: Arc<Mutex<Vec<RegisteredPlane>>>,
    /// Last firmware time, in [`Time`] units; lets detached holders (the
    /// file-tree hook, the server's exit dump) stamp snapshots.
    clock: Arc<AtomicU64>,
    /// `taken_at` of the most recent snapshot, in [`Time`] units; only
    /// consulted when the invariant auditor is on (snapshots of one
    /// registry must never move backwards in firmware time).
    last_snapshot: Arc<AtomicU64>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            planes: Arc::new(Mutex::new(Vec::new())),
            clock: Arc::new(AtomicU64::new(0)),
            last_snapshot: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Advances the registry's clock (called from the firmware tick).
    pub fn set_now(&self, now: Time) {
        self.clock.store(now.units(), Ordering::Relaxed);
    }

    /// The last time recorded via [`MetricsRegistry::set_now`].
    pub fn now(&self) -> Time {
        Time::from_units(self.clock.load(Ordering::Relaxed))
    }

    /// Snapshot stamped with the registry's own clock.
    pub fn snapshot_now(&self) -> MetricsSnapshot {
        self.snapshot(self.now())
    }

    /// Registers control plane `plane` mounted as CPA index `cpa`.
    ///
    /// Takes the plane lock once, here, to cache its identity and grab a
    /// [`StatsHandle`]; snapshots never lock the plane again.
    pub fn register(&self, cpa: usize, plane: CpHandle) {
        let entry = {
            let guard = plane.lock();
            RegisteredPlane {
                cpa,
                ident: guard.ident().to_string(),
                cp_type: guard.cp_type().code(),
                columns: guard.stats().columns().iter().map(|c| c.name).collect(),
                stats: guard.stats_handle(),
            }
        };
        self.planes.lock().push(entry);
    }

    /// Number of registered planes.
    pub fn len(&self) -> usize {
        self.planes.lock().len()
    }

    /// Whether no planes are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Walks every registered plane's statistics table and returns the
    /// non-zero rows, stamped with `now`.
    pub fn snapshot(&self, now: Time) -> MetricsSnapshot {
        if audit::enabled() {
            let prev = self.last_snapshot.swap(now.units(), Ordering::Relaxed);
            if now.units() < prev {
                audit::violation(
                    audit::AuditKind::Clock,
                    now,
                    u16::MAX,
                    "snapshot_regression",
                    &[("prev_units", TraceVal::U(prev))],
                );
            }
        }
        let planes = self.planes.lock();
        let mut out = Vec::with_capacity(planes.len());
        for entry in planes.iter() {
            let cells = entry.stats.cells();
            let mut rows = Vec::new();
            for i in 0..cells.rows() {
                let ds = DsId::new(i as u16);
                let Ok(row) = cells.snapshot_row(ds) else {
                    continue;
                };
                if row.iter().all(|&v| v == 0) {
                    continue;
                }
                rows.push(DsRow {
                    ds: ds.raw(),
                    values: row,
                });
            }
            out.push(PlaneMetrics {
                cpa: entry.cpa,
                ident: entry.ident.clone(),
                cp_type: entry.cp_type,
                columns: entry.columns.clone(),
                rows,
            });
        }
        MetricsSnapshot {
            taken_at: now,
            planes: out,
        }
    }
}

/// One control plane's statistics at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaneMetrics {
    /// CPA index the plane is mounted at (`/sys/cpa/cpaN`).
    pub cpa: usize,
    /// The plane's identification string (e.g. `"CACHE_CP"`).
    pub ident: String,
    /// The plane's type code (e.g. `'C'`, `'M'`, `'I'`).
    pub cp_type: char,
    /// Statistics-column names, in table order.
    pub columns: Vec<&'static str>,
    /// Rows with at least one non-zero statistic, in DS-id order.
    pub rows: Vec<DsRow>,
}

/// One DS-id's statistics row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsRow {
    /// The DS-id.
    pub ds: u16,
    /// Cell values, parallel to [`PlaneMetrics::columns`].
    pub values: Vec<u64>,
}

/// A machine-wide per-DS-id statistics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Firmware time the snapshot was taken.
    pub taken_at: Time,
    /// Per-plane statistics, in CPA-index order.
    pub planes: Vec<PlaneMetrics>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a deterministic JSON document.
    ///
    /// Key order is fixed (insertion order mirrors the struct layout) so
    /// two snapshots of identical state render byte-identically.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"taken_at_ns\": {},", self.taken_at.as_ns());
        s.push_str("  \"planes\": [");
        for (pi, p) in self.planes.iter().enumerate() {
            if pi > 0 {
                s.push(',');
            }
            s.push_str("\n    {\n");
            let _ = writeln!(s, "      \"cpa\": {},", p.cpa);
            let _ = writeln!(s, "      \"ident\": \"{}\",", p.ident);
            let _ = writeln!(s, "      \"type\": \"{}\",", p.cp_type);
            let cols: Vec<String> = p.columns.iter().map(|c| format!("\"{c}\"")).collect();
            let _ = writeln!(s, "      \"columns\": [{}],", cols.join(", "));
            s.push_str("      \"rows\": [");
            for (ri, r) in p.rows.iter().enumerate() {
                if ri > 0 {
                    s.push(',');
                }
                let vals: Vec<String> = r.values.iter().map(u64::to_string).collect();
                let _ = write!(
                    s,
                    "\n        {{\"ds\": {}, \"values\": [{}]}}",
                    r.ds,
                    vals.join(", ")
                );
            }
            if !p.rows.is_empty() {
                s.push_str("\n      ");
            }
            s.push_str("]\n    }");
        }
        if !self.planes.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}");
        s
    }

    /// Total of column `column` summed across every row of every plane
    /// whose ident is `ident` (test/analysis convenience).
    pub fn column_total(&self, ident: &str, column: &str) -> u64 {
        self.planes
            .iter()
            .filter(|p| p.ident == ident)
            .flat_map(|p| {
                let idx = p.columns.iter().position(|c| *c == column);
                p.rows
                    .iter()
                    .filter_map(move |r| idx.and_then(|i| r.values.get(i)).copied())
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_cp::{shared, ColumnDef, ControlPlane, CpType, DsTable};

    fn plane() -> CpHandle {
        let params = DsTable::new("parameter", vec![ColumnDef::new("enable")], 4);
        let stats = DsTable::new(
            "statistics",
            vec![ColumnDef::new("hits"), ColumnDef::new("misses")],
            4,
        );
        shared(ControlPlane::new("TEST_CP", CpType::Cache, params, stats, 4))
    }

    #[test]
    fn snapshot_collects_only_nonzero_rows() {
        let reg = MetricsRegistry::new();
        let cp = plane();
        reg.register(0, cp.clone());
        let stats = cp.lock().stats_handle();
        let hits = stats.key("hits").unwrap();
        let misses = stats.key("misses").unwrap();
        stats.set(DsId::new(1), hits, 10).unwrap();
        stats.set(DsId::new(3), misses, 7).unwrap();

        let snap = reg.snapshot(Time::from_us(2));
        assert_eq!(snap.planes.len(), 1);
        let p = &snap.planes[0];
        assert_eq!(p.ident, "TEST_CP");
        assert_eq!(p.cp_type, 'C');
        assert_eq!(p.columns, vec!["hits", "misses"]);
        assert_eq!(
            p.rows,
            vec![
                DsRow {
                    ds: 1,
                    values: vec![10, 0]
                },
                DsRow {
                    ds: 3,
                    values: vec![0, 7]
                },
            ]
        );
        assert_eq!(snap.column_total("TEST_CP", "hits"), 10);
        assert_eq!(snap.column_total("TEST_CP", "misses"), 7);
        assert_eq!(snap.column_total("TEST_CP", "absent"), 0);
        assert_eq!(snap.column_total("OTHER", "hits"), 0);
    }

    #[test]
    fn json_rendering_is_deterministic_and_parseable_shape() {
        let reg = MetricsRegistry::new();
        let cp = plane();
        reg.register(2, cp.clone());
        let stats = cp.lock().stats_handle();
        stats
            .set(DsId::new(0), stats.key("hits").unwrap(), 1)
            .unwrap();

        let a = reg.snapshot(Time::from_ns(5)).to_json();
        let b = reg.snapshot(Time::from_ns(5)).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"taken_at_ns\": 5"));
        assert!(a.contains("\"cpa\": 2"));
        assert!(a.contains("\"ident\": \"TEST_CP\""));
        assert!(a.contains("{\"ds\": 0, \"values\": [1, 0]}"));
    }

    #[test]
    fn empty_registry_renders_empty_list() {
        let reg = MetricsRegistry::new();
        let json = reg.snapshot(Time::ZERO).to_json();
        assert!(json.contains("\"planes\": []"));
    }
}
