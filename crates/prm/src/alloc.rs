//! Machine-memory allocation for LDoms.

use crate::error::FwError;

/// A first-fit allocator over the server's machine-physical memory.
///
/// LDom creation carves a contiguous region out of DRAM and programs its
/// base/limit into the memory control plane; destruction returns the
/// region (with coalescing).
///
/// # Example
///
/// ```
/// use pard_prm::MemAllocator;
/// let mut a = MemAllocator::new(1 << 30);
/// let r1 = a.allocate(256 << 20).unwrap();
/// let r2 = a.allocate(256 << 20).unwrap();
/// assert_ne!(r1, r2);
/// a.free(r1, 256 << 20);
/// assert_eq!(a.free_bytes(), (1 << 30) - (256 << 20));
/// ```
#[derive(Debug, Clone)]
pub struct MemAllocator {
    capacity: u64,
    /// Sorted, disjoint free extents `(base, size)`.
    free: Vec<(u64, u64)>,
}

impl MemAllocator {
    /// Creates an allocator over `capacity` bytes starting at address 0.
    pub fn new(capacity: u64) -> Self {
        MemAllocator {
            capacity,
            free: vec![(0, capacity)],
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Total free bytes.
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|&(_, s)| s).sum()
    }

    /// Allocates `bytes` contiguously, returning the base address.
    ///
    /// # Errors
    ///
    /// Returns [`FwError::OutOfMemory`] when no free extent is large
    /// enough.
    pub fn allocate(&mut self, bytes: u64) -> Result<u64, FwError> {
        if bytes == 0 {
            return Err(FwError::BadValue("zero-byte allocation".into()));
        }
        for i in 0..self.free.len() {
            let (base, size) = self.free[i];
            if size >= bytes {
                if size == bytes {
                    self.free.remove(i);
                } else {
                    self.free[i] = (base + bytes, size - bytes);
                }
                return Ok(base);
            }
        }
        Err(FwError::OutOfMemory {
            requested: bytes,
            largest_free: self.free.iter().map(|&(_, s)| s).max().unwrap_or(0),
        })
    }

    /// Returns a previously allocated region, coalescing neighbours.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the region overlaps a free extent — that means a
    /// double free.
    pub fn free(&mut self, base: u64, bytes: u64) {
        debug_assert!(
            !self
                .free
                .iter()
                .any(|&(b, s)| base < b + s && b < base + bytes),
            "double free of [{base:#x}, +{bytes:#x})"
        );
        let pos = self.free.partition_point(|&(b, _)| b < base);
        self.free.insert(pos, (base, bytes));
        // Coalesce around the insertion point.
        if pos + 1 < self.free.len() {
            let (b, s) = self.free[pos];
            let (nb, ns) = self.free[pos + 1];
            if b + s == nb {
                self.free[pos] = (b, s + ns);
                self.free.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (pb, ps) = self.free[pos - 1];
            let (b, s) = self.free[pos];
            if pb + ps == b {
                self.free[pos - 1] = (pb, ps + s);
                self.free.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_and_exhaustion() {
        let mut a = MemAllocator::new(100);
        assert_eq!(a.allocate(40).unwrap(), 0);
        assert_eq!(a.allocate(60).unwrap(), 40);
        match a.allocate(1) {
            Err(FwError::OutOfMemory { largest_free, .. }) => assert_eq!(largest_free, 0),
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn free_coalesces_both_sides() {
        let mut a = MemAllocator::new(300);
        let r1 = a.allocate(100).unwrap();
        let r2 = a.allocate(100).unwrap();
        let r3 = a.allocate(100).unwrap();
        a.free(r1, 100);
        a.free(r3, 100);
        assert_eq!(a.free_bytes(), 200);
        a.free(r2, 100);
        assert_eq!(a.free, vec![(0, 300)]);
        // Everything coalesced: a full-capacity allocation succeeds.
        assert_eq!(a.allocate(300).unwrap(), 0);
    }

    #[test]
    fn fragmentation_is_reported() {
        let mut a = MemAllocator::new(300);
        let _r1 = a.allocate(100).unwrap();
        let r2 = a.allocate(100).unwrap();
        let _r3 = a.allocate(100).unwrap();
        a.free(r2, 100);
        match a.allocate(150) {
            Err(FwError::OutOfMemory { largest_free, .. }) => assert_eq!(largest_free, 100),
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn zero_allocation_rejected() {
        let mut a = MemAllocator::new(10);
        assert!(a.allocate(0).is_err());
    }
}
